"""The single-pass sweep invariant: MultiThresholdReplay == N ReplayDBTs.

The merged-heap replay must be event-for-event equivalent to running an
independent :class:`ReplayDBT` per threshold: identical snapshots,
freeze steps, regions and optimisation-event streams — for any CFG,
behaviour, threshold set and trigger policy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import ControlFlowGraph
from repro.dbt import DBTConfig, MultiThresholdReplay, ReplayDBT
from repro.profiles import snapshot_to_dict
from repro.stochastic import ProgramBehavior, steady, walk

SWEEP = [1, 3, 10, 50, 200, 10_000]


def _assert_equivalent(cfg, trace, config, thresholds):
    multi = MultiThresholdReplay(trace, cfg, thresholds,
                                 base_config=config).run()
    for t in dict.fromkeys(thresholds):
        single = ReplayDBT(trace, cfg, config.with_threshold(t)).run()
        state = multi.state(t)
        assert state.freeze_step == single.freeze_step, f"T={t}"
        assert state.optimized == single.optimized, f"T={t}"
        assert state.optimization_events == single.optimization_events, \
            f"T={t}"
        assert snapshot_to_dict(state.snapshot()) == \
            snapshot_to_dict(single.snapshot()), f"T={t}"


def test_equivalence_across_thresholds(nested_cfg, nested_behavior):
    trace = walk(nested_cfg, nested_behavior, 30_000, seed=13)
    config = DBTConfig(pool_trigger_size=3)
    _assert_equivalent(nested_cfg, trace, config, SWEEP)


@pytest.mark.parametrize("pool_size,register_twice", [
    (1, True), (2, True), (8, True), (4, False), (100, False),
])
def test_equivalence_across_trigger_policies(nested_cfg, nested_behavior,
                                             pool_size, register_twice):
    trace = walk(nested_cfg, nested_behavior, 20_000, seed=5)
    config = DBTConfig(pool_trigger_size=pool_size,
                       register_twice_triggers=register_twice)
    _assert_equivalent(nested_cfg, trace, config, [2, 20, 500])


@pytest.mark.parametrize("name", ["gzip", "mcf", "art"])
def test_equivalence_on_benchmarks(name):
    from repro.workloads import get_benchmark

    benchmark = get_benchmark(name).scaled(0.01)
    trace = benchmark.trace("ref")
    config = DBTConfig(pool_trigger_size=4)
    _assert_equivalent(benchmark.cfg, trace, config, [5, 50, 500, 5000])


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000),
       p_inner=st.floats(0.5, 0.99),
       p_diamond=st.floats(0.05, 0.95))
def test_equivalence_randomised(seed, p_inner, p_diamond):
    cfg = ControlFlowGraph([
        (1,), (2,), (3, 4), (2,), (5, 6), (7,), (7,), (8, 1), ()])
    behavior = ProgramBehavior()
    behavior.set(2, steady(p_inner))
    behavior.set(4, steady(p_diamond))
    behavior.set(7, steady(0.001))
    trace = walk(cfg, behavior, 15_000, seed=seed)
    config = DBTConfig(pool_trigger_size=3)
    _assert_equivalent(cfg, trace, config, [1, 7, 30, 120, 800])


def test_duplicate_thresholds_collapse(nested_cfg, nested_behavior):
    trace = walk(nested_cfg, nested_behavior, 10_000, seed=1)
    multi = MultiThresholdReplay(trace, nested_cfg, [20, 20, 5, 20],
                                 base_config=DBTConfig(pool_trigger_size=3))
    assert multi.thresholds == [5, 20]
    assert len(multi.snapshots()) == 2


def test_run_is_idempotent(nested_cfg, nested_behavior):
    trace = walk(nested_cfg, nested_behavior, 10_000, seed=1)
    multi = MultiThresholdReplay(trace, nested_cfg, [5, 20],
                                 base_config=DBTConfig(pool_trigger_size=3))
    first = snapshot_to_dict(multi.state(20).snapshot())
    multi.run()  # second run must be a no-op
    assert snapshot_to_dict(multi.state(20).snapshot()) == first


def test_translation_map_matches_single_replay(nested_cfg,
                                               nested_behavior):
    trace = walk(nested_cfg, nested_behavior, 20_000, seed=3)
    config = DBTConfig(pool_trigger_size=3)
    multi = MultiThresholdReplay(trace, nested_cfg, [20],
                                 base_config=config).run()
    single = ReplayDBT(trace, nested_cfg, config.with_threshold(20))
    multi_map = multi.state(20).translation_map()
    single_map = single.translation_map()
    assert multi_map.internal_pairs == single_map.internal_pairs
    assert multi_map.tail_blocks == single_map.tail_blocks
    assert (multi_map.optimized_at == single_map.optimized_at).all()
    # Cached: the same object comes back on repeat calls.
    assert multi.state(20).translation_map() is multi_map
    assert single.translation_map() is single_map


def test_rejects_mismatched_cfg(nested_trace):
    small = ControlFlowGraph([(1,), ()])
    with pytest.raises(ValueError, match="disagree"):
        MultiThresholdReplay(nested_trace, small, [10])


def test_rejects_empty_sweep(nested_cfg, nested_trace):
    with pytest.raises(ValueError, match="at least one threshold"):
        MultiThresholdReplay(nested_trace, nested_cfg, [])
