"""Candidate-pool trigger-policy tests."""

from repro.dbt import CandidatePool, DBTConfig


def _pool(size=3, register_twice=True):
    return CandidatePool(DBTConfig(pool_trigger_size=size,
                                   register_twice_triggers=register_twice))


def test_pool_fills_then_triggers():
    pool = _pool(size=3)
    assert not pool.register(1)
    assert not pool.register(2)
    assert pool.register(3)
    assert len(pool) == 3


def test_register_twice_triggers():
    pool = _pool(size=100)
    assert not pool.register(1)
    assert pool.register(1)  # second registration of a pooled block


def test_register_twice_can_be_disabled():
    pool = _pool(size=100, register_twice=False)
    assert not pool.register(1)
    assert not pool.register(1)
    assert len(pool) == 1  # no duplicate entries


def test_drain_empties_and_preserves_order():
    pool = _pool(size=10)
    for block in (5, 2, 9):
        pool.register(block)
    assert pool.drain() == [5, 2, 9]
    assert len(pool) == 0
    assert 5 not in pool


def test_membership_and_blocks():
    pool = _pool(size=10)
    pool.register(7)
    assert 7 in pool
    assert 8 not in pool
    assert pool.blocks == [7]
