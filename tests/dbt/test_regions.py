"""Region-formation tests on hand-built CFGs."""

import pytest

from repro.cfg import ControlFlowGraph, find_loops
from repro.dbt import DBTConfig, RegionFormer
from repro.profiles import RegionKind


def _former(cfg, **config_kwargs):
    config = DBTConfig(**config_kwargs)
    return RegionFormer(cfg, find_loops(cfg), config)


def _counters(table):
    """CounterView from a dict block -> (use, taken)."""
    return lambda block: table.get(block, (0, 0))


class TestLoopRegions:
    def test_simple_loop_region(self, nested_cfg):
        former = _former(nested_cfg, threshold=10)
        counters = _counters({
            2: (100, 96), 3: (96, 0),
        })
        result = former.form([2], counters, set(), next_region_id=0)
        assert len(result.regions) == 1
        region = result.regions[0]
        assert region.kind is RegionKind.LOOP
        assert region.members == [2, 3]
        assert region.back_edges  # latch returns to the header
        assert (0, 1) in {(s, d) for s, d, _ in region.internal_edges}
        # fall edge of the header leaves the loop
        assert any(target == 4 for _, _, target in region.exit_edges)
        assert result.newly_optimized == {2, 3}

    def test_loop_region_restricted_to_body(self, nested_cfg):
        former = _former(nested_cfg, threshold=10)
        counters = _counters({2: (100, 96), 3: (96, 0), 4: (100, 80)})
        result = former.form([2], counters, set(), next_region_id=0)
        region = result.regions[0]
        assert 4 not in region.members  # outside the inner loop body

    def test_cold_latch_degrades_to_linear(self):
        # Header hot, latch far below hot_fraction * threshold.
        cfg = ControlFlowGraph([(1,), (2, 3), (1,), ()])
        former = _former(cfg, threshold=100, hot_fraction=0.5)
        counters = _counters({1: (200, 190), 2: (4, 0)})
        result = former.form([1], counters, set(), next_region_id=0)
        region = result.regions[0]
        assert region.kind is RegionKind.LINEAR
        assert region.members == [1]


class TestLinearRegions:
    def test_diamond_remerge_included(self, diamond_cfg):
        former = _former(diamond_cfg, threshold=10, include_prob=0.3)
        counters = _counters({
            0: (100, 0), 1: (100, 40), 2: (40, 0), 3: (60, 0), 4: (100, 0),
        })
        result = former.form([1], counters, set(), next_region_id=0)
        region = result.regions[0]
        assert region.kind is RegionKind.LINEAR
        assert set(region.members) == {1, 2, 3, 4}
        # tail = the join block at the end of the most likely path
        assert region.members[region.tail] == 4
        assert not region.exit_edges  # fully covered diamond

    def test_unlikely_arm_becomes_exit(self, diamond_cfg):
        former = _former(diamond_cfg, threshold=10, include_prob=0.3)
        counters = _counters({
            0: (100, 0), 1: (100, 10), 2: (10, 0), 3: (90, 0), 4: (100, 0),
        })
        result = former.form([1], counters, set(), next_region_id=0)
        region = result.regions[0]
        assert 2 not in region.members
        assert any(target == 2 for _, _, target in region.exit_edges)

    def test_growth_stops_at_loop_header(self, nested_cfg):
        former = _former(nested_cfg, threshold=10)
        counters = _counters({
            4: (100, 80), 5: (80, 0), 6: (20, 0), 7: (100, 0),
            1: (100, 0), 2: (2000, 1900),
        })
        result = former.form([4], counters, set(), next_region_id=0)
        region = result.regions[0]
        # 7's fall edge targets outer header 1 — a loop boundary.
        assert 1 not in region.members
        assert any(target == 1 for _, _, target in region.exit_edges)

    def test_region_size_cap(self):
        n = 30
        succs = [(i + 1,) for i in range(n - 1)] + [()]
        cfg = ControlFlowGraph(succs)
        former = _former(cfg, threshold=1, max_region_blocks=8)
        counters = _counters({i: (100, 0) for i in range(n)})
        result = former.form([0], counters, set(), next_region_id=0)
        assert result.regions[0].num_instances == 8

    def test_unprofiled_branch_includes_both_arms(self, diamond_cfg):
        # No counters: branch probability defaults to 0.5 > include_prob.
        former = _former(diamond_cfg, threshold=1, hot_fraction=0.0)
        counters = _counters({b: (10, 5) if b == 1 else (10, 0)
                              for b in range(5)})
        result = former.form([1], counters, set(), next_region_id=0)
        assert set(result.regions[0].members) == {1, 2, 3, 4}


class TestDuplication:
    def test_block_duplicated_into_second_region(self, nested_cfg):
        former = _former(nested_cfg, threshold=10, allow_duplication=True)
        counters = _counters({
            2: (100, 96), 3: (96, 0), 5: (80, 0), 6: (20, 0),
            4: (100, 80), 7: (100, 0),
        })
        first = former.form([2], counters, set(), next_region_id=0)
        optimized = set(first.newly_optimized)
        # 5/6/7 region grows from 4; blocks already optimised may still be
        # duplicated (none here, but the call must skip frozen seeds).
        second = former.form([4, 2], counters, optimized, next_region_id=1)
        # 2 is frozen: it must not seed, and newly_optimized excludes it.
        assert all(r.members[0] != 2 for r in second.regions)
        assert 2 not in second.newly_optimized

    def test_duplication_disabled(self, nested_cfg):
        former = _former(nested_cfg, threshold=10, allow_duplication=False,
                         hot_fraction=0.0)
        counters = _counters({b: (100, 50) for b in range(9)})
        first = former.form([4], counters, set(), next_region_id=0)
        optimized = set(first.newly_optimized)
        assert 5 in optimized and 6 in optimized
        second = former.form([0], counters, optimized, next_region_id=10)
        for region in second.regions:
            for member in region.members[1:]:
                assert member not in optimized


class TestOrdering:
    def test_loop_headers_seed_before_hotter_linear_blocks(self, nested_cfg):
        former = _former(nested_cfg, threshold=10)
        counters = _counters({
            2: (50, 48), 3: (48, 0), 4: (500, 400), 5: (400, 0),
            6: (100, 0), 7: (500, 0),
        })
        result = former.form([4, 2], counters, set(), next_region_id=0)
        # despite 4 being hotter, the loop header 2 seeds first
        assert result.regions[0].kind is RegionKind.LOOP
        assert result.regions[0].members[0] == 2

    def test_region_ids_sequential(self, nested_cfg):
        former = _former(nested_cfg, threshold=10)
        counters = _counters({b: (100, 50) for b in range(9)})
        result = former.form([2, 4], counters, set(), next_region_id=7)
        assert [r.region_id for r in result.regions] == \
            list(range(7, 7 + len(result.regions)))


def test_internal_cycles_avoided():
    # 1 -> 2 -> 3 -> 1 cycle where 1 is NOT a loop header seed
    # (seeded from 2, the back edge 3->1->2 would cycle).
    cfg = ControlFlowGraph([(1,), (2,), (3,), (1,)])
    former = _former(cfg, threshold=1, hot_fraction=0.0)
    counters = _counters({b: (100, 0) for b in range(4)})
    result = former.form([2], counters, set(), next_region_id=0)
    region = result.regions[0]
    region.validate()
    # whatever got included, the instance graph must be acyclic: validate
    # via topological sort of internal edges.
    from repro.cfg import topological_order
    succs = [[] for _ in range(region.num_instances)]
    for s, d, _ in region.internal_edges:
        succs[s].append(d)
    topological_order(succs, roots=[0])  # raises on a cycle


class TestProbabilityHelpers:
    """The module-level BP/edge-probability helpers never divide by zero."""

    def test_branch_probability_ratio(self):
        from repro.dbt.regions import branch_probability
        assert branch_probability(_counters({3: (10, 4)}), 3) == 0.4

    def test_branch_probability_zero_use_is_none(self):
        from repro.dbt.regions import branch_probability
        assert branch_probability(_counters({}), 3) is None
        assert branch_probability(_counters({3: (0, 0)}), 3) is None

    def test_edge_probabilities_unprofiled_branch_gets_prior(self):
        from repro.dbt.regions import edge_probabilities
        from repro.profiles import EdgeKind
        cfg = ControlFlowGraph([(1, 2), (), ()])
        edges = edge_probabilities(cfg, _counters({}), 0)
        assert edges == [(1, EdgeKind.TAKEN, 0.5), (2, EdgeKind.FALL, 0.5)]

    def test_edge_probabilities_profiled_branch(self):
        from repro.dbt.regions import edge_probabilities
        from repro.profiles import EdgeKind
        cfg = ControlFlowGraph([(1, 2), (), ()])
        edges = edge_probabilities(cfg, _counters({0: (10, 8)}), 0)
        assert edges == [(1, EdgeKind.TAKEN, 0.8),
                         (2, EdgeKind.FALL, 0.19999999999999996)]

    def test_edge_probabilities_single_successor(self):
        from repro.dbt.regions import edge_probabilities
        from repro.profiles import EdgeKind
        cfg = ControlFlowGraph([(1,), ()])
        assert edge_probabilities(cfg, _counters({}), 0) == \
            [(1, EdgeKind.ALWAYS, 1.0)]

    def test_edge_probabilities_exit_block(self):
        from repro.dbt.regions import edge_probabilities
        cfg = ControlFlowGraph([(1,), ()])
        assert edge_probabilities(cfg, _counters({}), 1) == []
