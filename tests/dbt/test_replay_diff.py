"""Differential wall: the batched replay kernel must equal the scalar
oracle.

Every test asserts the same contract from a different angle: for the
same (trace, CFG, DBT config), ``ReplayDBT``/``MultiThresholdReplay``
driven by the batched windowed sweep produce *identical* pipeline
outcomes to the scalar heap walk — same freeze steps, same regions,
same optimization events, same translation maps — regardless of window
chunking, trigger sizing or the register-twice rule.

The hypothesis tests fuzz arbitrary CFG shapes x behaviour mixes x
thresholds x chunkings; the named tests pin the structural edge cases
(threshold 1, single-block traces, all-frozen blocks, trigger size 1,
empty traces).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import ControlFlowGraph
from repro.dbt import DBTConfig, MultiThresholdReplay, ReplayDBT
from repro.dbt.replay_kernel import (DEFAULT_REPLAY_CHUNK,
                                     DEFAULT_REPLAY_KERNEL,
                                     resolve_replay_chunk,
                                     resolve_replay_kernel)
from repro.stochastic import (ProgramBehavior, drifting, phased, steady,
                              walk, warmup)

# Window sizes straddling every interesting boundary: degenerate (1,
# every window holds one registration per live block), small primes (so
# window edges never align with registration periods), the default, and
# effectively unbounded.
CHUNKS = (1, 7, 251, 2048, 10**6)


def _replay_fingerprint(dbt):
    """Everything a consumer can observe about a finished replay."""
    tmap = dbt.translation_map()
    return (
        sorted(dbt.freeze_step.items()),
        sorted(dbt.optimized),
        [(r.region_id, tuple(r.members), r.formed_at) for r in dbt.regions],
        [(now, tuple(blocks)) for now, blocks in dbt.optimization_events],
        tmap.optimized_at.tolist(),
        sorted(tmap.internal_pairs),
        sorted(tmap.tail_blocks),
        list(tmap.translated_blocks),
        tmap.blocks_translated,
        tmap.regions_formed,
    )


def _pair(trace, cfg, config, chunk):
    """(scalar oracle, batched) replays of the same inputs, both ran."""
    oracle = ReplayDBT(trace, cfg, config, replay_kernel="scalar").run()
    batched = ReplayDBT(trace, cfg, config, replay_kernel="batched",
                        replay_chunk=chunk).run()
    return oracle, batched


# ---------------------------------------------------------------------------
# Hypothesis fuzz: arbitrary CFGs x behaviours x thresholds x chunkings.
# ---------------------------------------------------------------------------

@st.composite
def cfg_strategy(draw):
    """Arbitrary small CFGs: 0/1/2 successors per node, cycles allowed."""
    n = draw(st.integers(min_value=1, max_value=9))
    node = st.integers(min_value=0, max_value=n - 1)
    succs = []
    for _ in range(n):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            succs.append(())
        elif kind <= 2:  # bias toward straight-line chains
            succs.append((draw(node),))
        else:
            succs.append((draw(node), draw(node)))
    return ControlFlowGraph(succs)


@st.composite
def behavior_strategy(draw, cfg, steps):
    """A behaviour for every 2-successor node, mixing all four kinds."""
    prob = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    behavior = ProgramBehavior()
    nominal = max(steps, 1)
    for block in range(cfg.num_nodes):
        if len(cfg.successors(block)) != 2:
            continue
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            behavior.set(block, steady(draw(prob)))
        elif kind == 1:
            split = draw(st.floats(min_value=0.1, max_value=0.9))
            behavior.set(block, phased([(split, draw(prob)),
                                        (1.0 - split, draw(prob))],
                                       nominal))
        elif kind == 2:
            behavior.set(block, warmup(draw(st.integers(0, 40)),
                                       draw(prob), draw(prob)))
        else:
            behavior.set(block, drifting(draw(prob), draw(prob), nominal,
                                         segments=draw(st.integers(1, 5))))
    return behavior


@st.composite
def replay_case(draw):
    steps = draw(st.integers(min_value=0, max_value=600))
    cfg = draw(cfg_strategy())
    behavior = draw(behavior_strategy(cfg, steps))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    trace = walk(cfg, behavior, max_steps=steps, seed=seed)
    config = DBTConfig(
        threshold=draw(st.integers(min_value=1, max_value=40)),
        pool_trigger_size=draw(st.integers(min_value=1, max_value=8)),
        register_twice_triggers=draw(st.booleans()))
    chunk = draw(st.sampled_from(CHUNKS))
    return trace, cfg, config, chunk


@settings(max_examples=120, deadline=None)
@given(replay_case())
def test_fuzz_batched_equals_scalar(case):
    trace, cfg, config, chunk = case
    oracle, batched = _pair(trace, cfg, config, chunk)
    assert _replay_fingerprint(oracle) == _replay_fingerprint(batched), \
        f"threshold={config.threshold} chunk={chunk}"


@settings(max_examples=40, deadline=None)
@given(replay_case(), st.lists(st.integers(min_value=1, max_value=60),
                               min_size=1, max_size=5))
def test_fuzz_multireplay_batched_equals_scalar(case, thresholds):
    trace, cfg, config, chunk = case
    oracle = MultiThresholdReplay(trace, cfg, thresholds,
                                  base_config=config,
                                  replay_kernel="scalar").run()
    batched = MultiThresholdReplay(trace, cfg, thresholds,
                                   base_config=config,
                                   replay_kernel="batched",
                                   replay_chunk=chunk).run()
    for t in oracle.thresholds:
        assert _replay_fingerprint(oracle.state(t)) == \
            _replay_fingerprint(batched.state(t)), f"t={t} chunk={chunk}"


@settings(max_examples=30, deadline=None)
@given(replay_case())
def test_fuzz_multireplay_state_equals_single_replay(case):
    """Batched multireplay states == independent scalar ReplayDBT runs."""
    trace, cfg, config, chunk = case
    thresholds = sorted({1, config.threshold, 3 * config.threshold})
    multi = MultiThresholdReplay(trace, cfg, thresholds, base_config=config,
                                 replay_kernel="batched",
                                 replay_chunk=chunk).run()
    for t in thresholds:
        single = ReplayDBT(trace, cfg, config.with_threshold(t),
                           replay_kernel="scalar").run()
        assert _replay_fingerprint(single) == \
            _replay_fingerprint(multi.state(t)), f"t={t}"


# ---------------------------------------------------------------------------
# Named edge cases the fuzz might only graze.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("chunk", CHUNKS)
def test_nested_cfg_every_chunking(nested_cfg, nested_trace, chunk):
    """The workhorse shape at a paper-scale threshold sweep."""
    for threshold in (1, 5, 50, 500):
        config = DBTConfig(threshold=threshold)
        oracle, batched = _pair(nested_trace, nested_cfg, config, chunk)
        assert _replay_fingerprint(oracle) == _replay_fingerprint(batched), \
            f"threshold={threshold} chunk={chunk}"


def test_threshold_one_registers_every_execution(nested_cfg, nested_trace):
    """T=1 makes every step a registration — the densest stream."""
    config = DBTConfig(threshold=1)
    for chunk in CHUNKS:
        oracle, batched = _pair(nested_trace, nested_cfg, config, chunk)
        assert _replay_fingerprint(oracle) == _replay_fingerprint(batched)


def test_single_block_trace():
    """One self-looping block: the pool can never fill beyond one."""
    cfg = ControlFlowGraph([(0,)])
    trace = walk(cfg, ProgramBehavior(), max_steps=500, seed=3)
    for trigger_size in (1, 2, 12):
        for twice in (True, False):
            config = DBTConfig(threshold=5,
                               pool_trigger_size=trigger_size,
                               register_twice_triggers=twice)
            for chunk in (1, 2048):
                oracle, batched = _pair(trace, cfg, config, chunk)
                assert _replay_fingerprint(oracle) == \
                    _replay_fingerprint(batched), \
                    f"trigger={trigger_size} twice={twice} chunk={chunk}"


def test_all_blocks_freeze(nested_cfg, nested_behavior):
    """A hot trace at a tiny threshold freezes every block; the sweep
    must terminate early instead of materializing dead registrations."""
    trace = walk(nested_cfg, nested_behavior, max_steps=60_000, seed=13)
    config = DBTConfig(threshold=2, pool_trigger_size=2)
    oracle, batched = _pair(trace, nested_cfg, config, 64)
    assert _replay_fingerprint(oracle) == _replay_fingerprint(batched)
    assert set(batched.freeze_step) == set(batched.optimized)
    assert len(batched.optimized) > 0


def test_trigger_size_one_fires_immediately(nested_cfg, nested_trace):
    """pool_trigger_size=1: every fresh registration triggers."""
    config = DBTConfig(threshold=10, pool_trigger_size=1)
    for chunk in CHUNKS:
        oracle, batched = _pair(nested_trace, nested_cfg, config, chunk)
        assert _replay_fingerprint(oracle) == _replay_fingerprint(batched)


def test_register_twice_disabled(nested_cfg, nested_trace):
    """With the dup rule off, only a full pool triggers."""
    config = DBTConfig(threshold=10, pool_trigger_size=4,
                       register_twice_triggers=False)
    for chunk in CHUNKS:
        oracle, batched = _pair(nested_trace, nested_cfg, config, chunk)
        assert _replay_fingerprint(oracle) == _replay_fingerprint(batched)


def test_empty_and_tiny_traces():
    """Zero and near-zero steps: no registrations at all."""
    cfg = ControlFlowGraph([(1,), (2,), ()])
    for steps in (0, 1, 2):
        trace = walk(cfg, ProgramBehavior(), max_steps=steps, seed=0)
        for threshold in (1, 2, 100):
            config = DBTConfig(threshold=threshold)
            oracle, batched = _pair(trace, cfg, config, 1)
            assert _replay_fingerprint(oracle) == \
                _replay_fingerprint(batched), \
                f"steps={steps} threshold={threshold}"


def test_snapshots_identical_across_kernels(nested_cfg, nested_trace):
    """The INIP(T) snapshot — the paper-facing artefact — is kernel-blind."""
    config = DBTConfig(threshold=50)
    oracle, batched = _pair(nested_trace, nested_cfg, config, 2048)
    a, b = oracle.snapshot(), batched.snapshot()
    assert a.blocks.keys() == b.blocks.keys()
    for block in a.blocks:
        pa, pb = a.blocks[block], b.blocks[block]
        assert (pa.use, pa.taken, pa.frozen_at) == \
            (pb.use, pb.taken, pb.frozen_at)
    assert a.profiling_ops == b.profiling_ops


# ---------------------------------------------------------------------------
# Kernel selection semantics.
# ---------------------------------------------------------------------------

def test_resolve_replay_kernel_default_and_env(monkeypatch):
    # The CI matrix pins $REPRO_REPLAY_KERNEL via REPRO_TEST_REPLAY_KERNEL;
    # drop it so the bare default is observable.
    monkeypatch.delenv("REPRO_REPLAY_KERNEL", raising=False)
    assert resolve_replay_kernel() == DEFAULT_REPLAY_KERNEL
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "scalar")
    assert resolve_replay_kernel() == "scalar"
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "  Batched  ")
    assert resolve_replay_kernel() == "batched"
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "")
    assert resolve_replay_kernel() == DEFAULT_REPLAY_KERNEL
    # Explicit argument beats the environment.
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "scalar")
    assert resolve_replay_kernel("batched") == "batched"


def test_resolve_replay_kernel_rejects_unknown(monkeypatch):
    with pytest.raises(ValueError):
        resolve_replay_kernel("turbo")
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "turbo")
    with pytest.raises(ValueError):
        resolve_replay_kernel()


def test_resolve_replay_chunk(monkeypatch):
    assert resolve_replay_chunk() == DEFAULT_REPLAY_CHUNK
    assert resolve_replay_chunk(7) == 7
    monkeypatch.setenv("REPRO_REPLAY_CHUNK", "123")
    assert resolve_replay_chunk() == 123
    monkeypatch.setenv("REPRO_REPLAY_CHUNK", "nope")
    with pytest.raises(ValueError):
        resolve_replay_chunk()
    with pytest.raises(ValueError):
        resolve_replay_chunk(0)


def test_replay_env_var_drives_instances(nested_cfg, nested_trace,
                                         monkeypatch):
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "scalar")
    assert ReplayDBT(nested_trace, nested_cfg,
                     DBTConfig()).replay_kernel == "scalar"
    assert MultiThresholdReplay(nested_trace, nested_cfg,
                                [5]).replay_kernel == "scalar"
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "batched")
    monkeypatch.setenv("REPRO_REPLAY_CHUNK", "64")
    replay = ReplayDBT(nested_trace, nested_cfg, DBTConfig())
    assert replay.replay_kernel == "batched"
    assert replay.replay_chunk == 64
