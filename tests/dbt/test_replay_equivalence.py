"""The central DBT invariant: trace replay == live translation.

The fast :class:`ReplayDBT` must produce byte-identical snapshots to the
live :class:`TwoPhaseDBT` fed the same trace, for any CFG, behaviour,
threshold and trigger policy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import ControlFlowGraph
from repro.dbt import DBTConfig, ReplayDBT, TwoPhaseDBT
from repro.profiles import snapshot_to_dict
from repro.stochastic import ProgramBehavior, replay_trace, steady, walk


def _assert_equivalent(cfg, trace, config):
    live = TwoPhaseDBT(cfg, config)
    replay_trace(trace, live)
    live_snapshot = snapshot_to_dict(live.snapshot())
    replay_snapshot = snapshot_to_dict(
        ReplayDBT(trace, cfg, config).snapshot())
    assert live_snapshot == replay_snapshot


@pytest.mark.parametrize("threshold", [1, 3, 10, 50, 200, 10_000])
def test_equivalence_across_thresholds(nested_cfg, nested_behavior,
                                       threshold):
    trace = walk(nested_cfg, nested_behavior, 30_000, seed=13)
    config = DBTConfig(threshold=threshold, pool_trigger_size=3)
    _assert_equivalent(nested_cfg, trace, config)


@pytest.mark.parametrize("pool_size,register_twice", [
    (1, True), (2, True), (8, True), (4, False), (100, False),
])
def test_equivalence_across_trigger_policies(nested_cfg, nested_behavior,
                                             pool_size, register_twice):
    trace = walk(nested_cfg, nested_behavior, 20_000, seed=5)
    config = DBTConfig(threshold=20, pool_trigger_size=pool_size,
                       register_twice_triggers=register_twice)
    _assert_equivalent(nested_cfg, trace, config)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000),
       threshold=st.integers(1, 300),
       p_inner=st.floats(0.5, 0.99),
       p_diamond=st.floats(0.05, 0.95))
def test_equivalence_randomised(seed, threshold, p_inner, p_diamond):
    cfg = ControlFlowGraph([
        (1,), (2,), (3, 4), (2,), (5, 6), (7,), (7,), (8, 1), ()])
    behavior = ProgramBehavior()
    behavior.set(2, steady(p_inner))
    behavior.set(4, steady(p_diamond))
    behavior.set(7, steady(0.001))
    trace = walk(cfg, behavior, 15_000, seed=seed)
    config = DBTConfig(threshold=threshold, pool_trigger_size=3)
    _assert_equivalent(cfg, trace, config)


def test_replay_is_idempotent(nested_cfg, nested_behavior):
    trace = walk(nested_cfg, nested_behavior, 10_000, seed=1)
    replay = ReplayDBT(trace, nested_cfg, DBTConfig(threshold=20,
                                                    pool_trigger_size=3))
    first = snapshot_to_dict(replay.snapshot())
    second = snapshot_to_dict(replay.snapshot())
    assert first == second


def test_replay_rejects_mismatched_cfg(nested_trace):
    small = ControlFlowGraph([(1,), ()])
    with pytest.raises(ValueError, match="disagree"):
        ReplayDBT(nested_trace, small, DBTConfig())


def test_inip_from_trace_helper(nested_cfg, nested_trace):
    from repro.dbt import inip_from_trace
    snapshot = inip_from_trace(nested_trace, nested_cfg,
                               DBTConfig(threshold=30))
    assert snapshot.threshold == 30
    snapshot.validate()
