"""Direct unit coverage for the replay building blocks.

The differential wall (``test_replay_diff.py``) proves the batched and
scalar kernels agree with each other; this file pins what the shared
primitives they are built on actually compute — registration positions,
freeze-respecting counter views, the candidate pool state machine — and
the multi-threshold counter semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import ControlFlowGraph
from repro.dbt import CandidatePool, DBTConfig, MultiThresholdReplay, ReplayDBT
from repro.dbt.replay import frozen_counter_view, registration_positions
from repro.obs.registry import counter_value
from repro.stochastic import ProgramBehavior, walk
from repro.stochastic.trace import ExecutionTrace


def _trace_of(blocks, taken=None, num_blocks=None):
    blocks = np.asarray(blocks, dtype=np.int32)
    if taken is None:
        taken = np.zeros(len(blocks), dtype=np.int8)
    if num_blocks is None:
        num_blocks = int(blocks.max()) + 1 if len(blocks) else 1
    return ExecutionTrace(blocks=blocks,
                          taken=np.asarray(taken, dtype=np.int8),
                          num_blocks=num_blocks)


# ---------------------------------------------------------------------------
# registration_positions
# ---------------------------------------------------------------------------

def test_registration_positions_strided_semantics():
    """The k-th registration is the (k*T)-th execution of the block."""
    # Block 0 runs at steps 0,2,4,6,8; block 1 at 1,3,5,7,9.
    trace = _trace_of([0, 1] * 5)
    events = trace.events()
    pos = registration_positions(events, threshold=2)
    # Block 0's 2nd and 4th executions are at trace positions 2 and 6.
    np.testing.assert_array_equal(pos[0], [2, 6])
    np.testing.assert_array_equal(pos[1], [3, 7])


def test_registration_positions_threshold_one_is_every_step():
    trace = _trace_of([0, 1, 0, 1, 0])
    pos = registration_positions(trace.events(), threshold=1)
    np.testing.assert_array_equal(pos[0], [0, 2, 4])
    np.testing.assert_array_equal(pos[1], [1, 3])


def test_registration_positions_drops_unregistered_blocks():
    """Blocks with fewer than T executions never register at all."""
    trace = _trace_of([0, 0, 0, 1])
    pos = registration_positions(trace.events(), threshold=3)
    assert list(pos) == [0]
    np.testing.assert_array_equal(pos[0], [2])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=4), max_size=200),
       st.integers(min_value=1, max_value=9))
def test_registration_positions_properties(blocks, threshold):
    """Positions are strictly increasing, unique across blocks, and each
    block contributes exactly floor(executions / T) of them."""
    trace = _trace_of(blocks, num_blocks=5)
    events = trace.events()
    pos = registration_positions(events, threshold)
    seen = []
    for block, regs in pos.items():
        assert len(regs) == len(events[block].steps) // threshold
        assert np.all(np.diff(regs) > 0)  # monotone within a block
        seen.extend(int(p) for p in regs)
    assert len(seen) == len(set(seen))  # one block executes per step
    for block, ev in events.items():
        if len(ev.steps) >= threshold:
            assert block in pos


# ---------------------------------------------------------------------------
# frozen_counter_view
# ---------------------------------------------------------------------------

def test_frozen_counter_view_counts_up_to_now():
    trace = _trace_of([0, 0, 1, 0], taken=[1, 0, 1, 1])
    view = frozen_counter_view(trace.events(), freeze_step={}, now=3)
    assert view(0) == (2, 1)   # two uses before step 3, one taken
    assert view(1) == (1, 1)
    assert view(7) == (0, 0)   # never-seen block


def test_frozen_counter_view_respects_freeze():
    """A frozen block's counters stop at its freeze step even when the
    view is taken later."""
    trace = _trace_of([0, 0, 0, 0], taken=[1, 1, 0, 0])
    events = trace.events()
    unfrozen = frozen_counter_view(events, {}, now=4)
    frozen = frozen_counter_view(events, {0: 2}, now=4)
    assert unfrozen(0) == (4, 2)
    assert frozen(0) == (2, 2)


def test_frozen_counter_view_freeze_after_now_is_inert():
    trace = _trace_of([0, 0, 0])
    view = frozen_counter_view(trace.events(), {0: 10}, now=2)
    assert view(0) == (2, 0)   # min(now, limit) == now


@settings(max_examples=60, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=100),
       st.integers(min_value=0, max_value=120),
       st.integers(min_value=0, max_value=120))
def test_frozen_counter_view_is_monotone_and_capped(taken, now, limit):
    """use/taken grow monotonically with now, cap at the freeze step,
    and taken <= use always."""
    trace = _trace_of([0] * len(taken), taken=[int(t) for t in taken])
    events = trace.events()
    use_now, taken_now = frozen_counter_view(events, {0: limit}, now)(0)
    assert 0 <= taken_now <= use_now <= min(now, limit, len(taken))
    use_later, taken_later = frozen_counter_view(
        events, {0: limit}, now + 1)(0)
    assert use_later >= use_now and taken_later >= taken_now


# ---------------------------------------------------------------------------
# CandidatePool state machine
# ---------------------------------------------------------------------------

def test_pool_register_returns_trigger_on_fill():
    pool = CandidatePool(DBTConfig(pool_trigger_size=3))
    assert pool.register(10) is False
    assert pool.register(11) is False
    assert pool.register(12) is True
    assert pool.blocks == [10, 11, 12]


def test_pool_register_twice_rule():
    on = CandidatePool(DBTConfig(pool_trigger_size=5,
                                 register_twice_triggers=True))
    on.register(1)
    assert on.register(1) is True      # dup fires when enabled
    assert len(on) == 1                # ...but is not re-added
    off = CandidatePool(DBTConfig(pool_trigger_size=5,
                                  register_twice_triggers=False))
    off.register(1)
    assert off.register(1) is False
    assert len(off) == 1


def test_pool_drain_empties_and_preserves_order():
    pool = CandidatePool(DBTConfig(pool_trigger_size=10))
    for b in (5, 3, 9):
        pool.register(b)
    assert pool.drain() == [5, 3, 9]
    assert len(pool) == 0
    assert pool.drain() == []          # drain is idempotent when empty
    # A drained block registers fresh, as a brand-new member.
    assert pool.register(5) is False
    assert pool.blocks == [5]


@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=6), max_size=60),
       st.integers(min_value=1, max_value=8),
       st.booleans())
def test_pool_properties(registrations, trigger_size, twice):
    """Membership is a set, order is first-registration order, and the
    trigger fires exactly per the config rules."""
    config = DBTConfig(pool_trigger_size=trigger_size,
                       register_twice_triggers=twice)
    pool = CandidatePool(config)
    members = []
    for block in registrations:
        was_member = block in pool
        fired = pool.register(block)
        if was_member:
            assert fired is twice
        else:
            members.append(block)
            assert fired is (len(members) >= trigger_size)
        assert pool.blocks == members
        if fired:
            assert pool.drain() == members
            assert len(pool) == 0
            members = []


# ---------------------------------------------------------------------------
# Multi-threshold counter semantics (the N-fold inflation fix).
# ---------------------------------------------------------------------------

def _study_inputs():
    cfg = ControlFlowGraph([(1,), (1, 2), ()])
    behavior = ProgramBehavior()
    from repro.stochastic import steady
    behavior.set(1, steady(0.98))
    trace = walk(cfg, behavior, max_steps=20_000, seed=5)
    return cfg, trace


@pytest.mark.parametrize("kernel", ["scalar", "batched"])
def test_multireplay_counts_one_shared_pass(kernel):
    """A multi-threshold sweep is one pass over the trace: replay.runs
    and replay.blocks_translated must match a single ReplayDBT run, not
    scale with the number of threshold states."""
    cfg, trace = _study_inputs()
    thresholds = [2, 10, 50, 200]
    events = trace.events()

    runs0 = counter_value("replay.runs")
    translated0 = counter_value("replay.blocks_translated")
    MultiThresholdReplay(trace, cfg, thresholds,
                         replay_kernel=kernel).run()
    assert counter_value("replay.runs") - runs0 == 1
    assert counter_value("replay.blocks_translated") - translated0 == \
        len(events)


@pytest.mark.parametrize("kernel", ["scalar", "batched"])
def test_multireplay_per_state_counters_still_sum(kernel):
    """Retranslations/regions/optimization events stay per-state."""
    cfg, trace = _study_inputs()
    thresholds = [2, 10, 50]
    retr0 = counter_value("replay.retranslations")
    multi = MultiThresholdReplay(trace, cfg, thresholds,
                                 replay_kernel=kernel).run()
    expected = sum(len(multi.state(t).optimized) for t in thresholds)
    assert counter_value("replay.retranslations") - retr0 == expected
    assert expected > 0


def test_replay_kernel_counters_attribute_the_pass():
    cfg, trace = _study_inputs()
    s0 = counter_value("replay.kernel.scalar.runs")
    b0 = counter_value("replay.kernel.batched.runs")
    ReplayDBT(trace, cfg, DBTConfig(threshold=10),
              replay_kernel="scalar").run()
    assert counter_value("replay.kernel.scalar.runs") - s0 == 1
    ReplayDBT(trace, cfg, DBTConfig(threshold=10),
              replay_kernel="batched").run()
    assert counter_value("replay.kernel.batched.runs") - b0 == 1
    assert counter_value("replay.kernel.batched.events") > 0
    assert counter_value("replay.kernel.batched.windows") > 0
