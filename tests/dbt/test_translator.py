"""Live two-phase-translator behaviour tests."""

import pytest

from repro.dbt import DBTConfig, TwoPhaseDBT
from repro.stochastic import replay_trace, walk, steady, ProgramBehavior


def _run_live(cfg, trace, **config_kwargs):
    dbt = TwoPhaseDBT(cfg, DBTConfig(**config_kwargs))
    replay_trace(trace, dbt)
    return dbt


def test_snapshot_counts_match_run(nested_cfg, nested_trace):
    dbt = _run_live(nested_cfg, nested_trace, threshold=10**9)
    snapshot = dbt.snapshot()
    # threshold never reached: counts equal whole-trace counts.
    use = nested_trace.use_counts()
    taken = nested_trace.taken_counts()
    for block, profile in snapshot.blocks.items():
        assert profile.use == use[block]
        assert profile.taken == taken[block]
        assert profile.frozen_at is None
    assert not snapshot.regions


def test_optimization_freezes_hot_blocks(nested_cfg, nested_trace):
    dbt = _run_live(nested_cfg, nested_trace, threshold=50,
                    pool_trigger_size=3)
    snapshot = dbt.snapshot()
    assert snapshot.regions
    optimized = snapshot.optimized_blocks()
    assert optimized  # something got optimised
    for block in optimized:
        profile = snapshot.blocks[block]
        assert profile.is_frozen
        # frozen counts never exceed whole-run counts
        assert profile.use <= nested_trace.use_counts()[block]


def test_seed_blocks_freeze_between_t_and_2t(nested_cfg, nested_trace):
    threshold = 50
    dbt = _run_live(nested_cfg, nested_trace, threshold=threshold,
                    pool_trigger_size=3)
    snapshot = dbt.snapshot()
    for step, blocks in dbt.optimization_events:
        for block in blocks:
            profile = snapshot.blocks[block]
            if profile.use >= threshold:  # seeds and hot members
                assert profile.use < 2 * threshold + 1


def test_profiling_ops_do_not_grow_after_freeze(nested_cfg,
                                                nested_behavior):
    # With a tiny threshold everything freezes early, so total profiling
    # operations must be far below the whole-run ops.
    trace = walk(nested_cfg, nested_behavior, 50_000, seed=3)
    small = _run_live(nested_cfg, trace, threshold=5,
                      pool_trigger_size=3).snapshot()
    unopt = _run_live(nested_cfg, trace, threshold=10**9).snapshot()
    assert small.profiling_ops < unopt.profiling_ops / 50


def test_snapshot_label_and_metadata(nested_cfg, nested_trace):
    dbt = _run_live(nested_cfg, nested_trace, threshold=20)
    snapshot = dbt.snapshot(input_name="ref")
    assert snapshot.label == "INIP(20)"
    assert snapshot.threshold == 20
    assert snapshot.input_name == "ref"
    assert snapshot.total_steps == nested_trace.num_steps
    snapshot.validate()


def test_no_reoptimization_of_frozen_blocks(nested_cfg, nested_trace):
    dbt = _run_live(nested_cfg, nested_trace, threshold=10,
                    pool_trigger_size=2)
    seen = set()
    for _step, blocks in dbt.optimization_events:
        for block in blocks:
            assert block not in seen, "block frozen twice"
            seen.add(block)


def test_regions_validate(nested_cfg, nested_trace):
    dbt = _run_live(nested_cfg, nested_trace, threshold=25,
                    pool_trigger_size=3)
    for region in dbt.regions:
        region.validate()


def test_live_on_interpreter_events(loop_program):
    """The live DBT subscribes directly to the interpreter."""
    from repro.cfg import cfg_from_program
    from repro.interp import Interpreter

    cfg, _ = cfg_from_program(loop_program)
    dbt = TwoPhaseDBT(cfg, DBTConfig(threshold=2, pool_trigger_size=1))
    Interpreter(loop_program, listener=dbt).run()
    snapshot = dbt.snapshot()
    assert snapshot.total_steps == 7  # entry + 5 loop + done
    assert snapshot.regions  # the loop got hot enough to optimise


def test_live_translator_retranslates_with_program():
    """Supplying the VIR program makes every optimisation event actually
    retranslate its regions (paper: 'advanced optimizations are applied')."""
    from repro.cfg import cfg_from_program
    from repro.ir import branchy_prng

    program = branchy_prng(iterations=3000)
    cfg, _ = cfg_from_program(program)
    dbt = TwoPhaseDBT(cfg, DBTConfig(threshold=100, pool_trigger_size=2),
                      program=program)
    from repro.interp import Interpreter
    Interpreter(program, listener=dbt, step_limit=10**8).run()
    assert dbt.regions
    assert len(dbt.optimization_reports) == len(dbt.regions)
    assert all(r.speedup >= 1.0 for r in dbt.optimization_reports)
    assert any(r.speedup > 1.0 for r in dbt.optimization_reports)
