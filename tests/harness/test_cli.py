"""CLI tests (cheap paths only — figure 5 and argument validation)."""

import pytest

from repro.harness.cli import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.figures is None
    assert not args.quick
    assert not args.no_perf


def test_parser_accepts_options():
    args = build_parser().parse_args(
        ["--figures", "8", "17", "--benchmarks", "gzip", "--quick",
         "--no-perf", "--no-cache", "--verbose"])
    assert args.figures == [8, 17]
    assert args.benchmarks == ["gzip"]
    assert args.quick and args.no_perf and args.no_cache and args.verbose


def test_figure5_only_runs_without_study(capsys):
    assert main(["--figures", "5"]) == 0
    out = capsys.readouterr().out
    assert "Sd.BP = 0.21" in out
    assert "Sd.CP = 0.00" in out


def test_unknown_benchmark_rejected(capsys):
    assert main(["--figures", "5", "--benchmarks", "doom"]) == 2
    assert "unknown benchmarks" in capsys.readouterr().err


def test_quick_single_figure_single_benchmark(capsys):
    code = main(["--figures", "13", "--benchmarks", "swim", "--quick",
                 "--no-perf", "--no-cache"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 13" in out


def test_unknown_figure_rejected(capsys):
    code = main(["--figures", "99", "--benchmarks", "swim", "--quick",
                 "--no-perf", "--no-cache"])
    assert code == 2


def test_summary_command(capsys):
    code = main(["--summary", "swim", "--quick", "--no-perf",
                 "--no-cache"])
    assert code == 0
    out = capsys.readouterr().out
    assert "study card: swim" in out
    assert "training reference" in out


def test_summary_unknown_benchmark(capsys):
    assert main(["--summary", "doom", "--no-cache"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_parser_observability_flags():
    args = build_parser().parse_args(
        ["--stats", "--metrics-out", "m.json", "--trace-out", "t.json",
         "--log-level", "debug", "--log-json"])
    assert args.stats
    assert args.metrics_out == "m.json"
    assert args.trace_out == "t.json"
    assert args.log_level == "debug"
    assert args.log_json


def test_stats_mode_prints_manifest(capsys):
    code = main(["--stats", "--benchmarks", "swim", "--quick",
                 "--no-perf", "--no-cache"])
    assert code == 0
    out = capsys.readouterr().out
    assert "run manifest" in out
    assert "fingerprint" in out
    assert "swim" in out
    assert "Figure" not in out  # figures skipped in stats mode


def test_metrics_and_trace_export(tmp_path, capsys):
    import json
    metrics_path = str(tmp_path / "m.json")
    trace_path = str(tmp_path / "t.json")
    code = main(["--figures", "13", "--benchmarks", "swim", "--quick",
                 "--no-perf", "--no-cache", "--metrics-out", metrics_path,
                 "--trace-out", trace_path])
    assert code == 0
    with open(metrics_path) as f:
        metrics = json.load(f)
    assert metrics["counters"]["replay.blocks_translated"] > 0
    assert metrics["counters"]["replay.runs"] > 0
    with open(trace_path) as f:
        trace = json.load(f)
    names = {event["name"] for event in trace["traceEvents"]}
    assert "full_study" in names
    assert "replay.multi_run" in names  # the single-pass threshold sweep


def test_csv_export(tmp_path, capsys):
    out_dir = str(tmp_path / "csv")
    code = main(["--figures", "13", "--benchmarks", "swim", "--quick",
                 "--no-perf", "--no-cache", "--csv", out_dir])
    assert code == 0
    import os
    assert os.path.exists(os.path.join(out_dir, "fig13.csv"))
    with open(os.path.join(out_dir, "fig13.csv")) as f:
        assert f.readline().startswith("threshold,")
