"""Dispatch telemetry: per-job timelines, manifest sections, trace lanes."""

import json
import os

import pytest

from repro.dbt import DBTConfig
from repro.harness import run_full_study
from repro.harness.faults import FaultPlan
from repro.harness.parallel import RetryPolicy, dispatch_study_jobs
from repro.obs.dispatch import SEGMENTS, JobTimeline, summarize
from repro.obs.spans import clear_trace, trace_events, write_trace
from repro.perfmodel import DEFAULT_COSTS

KWARGS = dict(thresholds=[5, 50], steps_scale=0.02, include_perf=False)

DISPATCH_ARGS = dict(thresholds=[5, 50], config=DBTConfig(),
                     costs=DEFAULT_COSTS, steps_scale=0.02,
                     include_perf=False)


def _identical_bytes(results_a, results_b, tmp_path):
    """Byte-compare two StudyResults after manifest normalisation."""
    paths = []
    for i, results in enumerate((results_a, results_b)):
        manifest, results.manifest = results.manifest, None
        path = str(tmp_path / f"cmp{i}.json")
        results.save(path)
        results.manifest = manifest
        paths.append(path)
    with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
        return a.read() == b.read()


def _dispatch(names, jobs):
    policy = RetryPolicy(retries=0, backoff=0.0)
    return dispatch_study_jobs(names, jobs=jobs, policy=policy,
                               plan=FaultPlan(), **DISPATCH_ARGS)


# -- JobTimeline arithmetic ---------------------------------------------------


def test_timeline_totals_and_segments():
    record = JobTimeline(bench="gzip", serialize_seconds=0.1,
                         queue_seconds=0.2, spawn_seconds=0.15,
                         execute_seconds=1.0, transfer_seconds=0.05,
                         merge_seconds=0.05, payload_bytes=420)
    # spawn is a *slice of* queue, not an additional segment.
    assert record.total_seconds == pytest.approx(1.4)
    assert record.overhead_seconds == pytest.approx(0.4)
    assert record.segment("spawn") == 0.15
    data = record.to_dict()
    assert data["total_seconds"] == pytest.approx(1.4)
    assert "extra" not in data


def test_summarize_decomposes_wall_time():
    records = [
        JobTimeline(bench="a", execute_seconds=2.0, queue_seconds=0.5),
        JobTimeline(bench="b", execute_seconds=2.0, outcome="error"),
    ]
    summary = summarize(records, jobs=2, wall_seconds=2.5)
    assert summary["outcomes"] == {"ok": 1, "error": 1}
    assert summary["execute_seconds"] == 4.0
    assert summary["overhead_seconds"] == 0.5
    assert summary["effective_parallelism"] == 1.6
    assert set(summary["segments_seconds"]) == set(SEGMENTS)
    assert len(summary["records_detail"]) == 2


# -- dispatcher records -------------------------------------------------------


def test_inline_dispatch_records_timelines():
    result = _dispatch(["gzip"], jobs=1)
    (record,) = result.records
    assert record.mode == "inline"
    assert record.outcome == "ok"
    assert record.bench == "gzip"
    assert record.worker_pid == os.getpid()
    assert record.execute_seconds > 0
    assert record.queue_seconds == 0  # nothing queues in-process


def test_pool_dispatch_records_full_segments():
    result = _dispatch(["gzip", "mcf"], jobs=2)
    assert {r.bench for r in result.records} == {"gzip", "mcf"}
    for record in result.records:
        assert record.mode == "pool"
        assert record.outcome == "ok"
        assert record.worker_pid not in (None, os.getpid())
        assert record.payload_bytes > 0
        assert record.serialize_seconds > 0
        assert record.execute_seconds > 0
        assert record.queue_seconds >= 0
        assert 0 <= record.spawn_seconds <= record.queue_seconds + 1e-9
        assert record.transfer_seconds >= 0


# -- the manifest -------------------------------------------------------------


def test_manifest_carries_dispatch_and_profile_sections():
    results = run_full_study(names=["gzip", "mcf"], cache_dir=None,
                             jobs=2, **KWARGS)
    manifest = results.manifest
    dispatch = manifest["dispatch"]
    assert dispatch["jobs"] == 2
    assert dispatch["outcomes"] == {"ok": 2}
    assert dispatch["segments_seconds"]["execute"] > 0
    assert dispatch["segments_seconds"]["merge"] > 0  # runner attached it
    benches = {r["bench"] for r in dispatch["records_detail"]}
    assert benches == {"gzip", "mcf"}

    profile = manifest["profile"]
    assert profile["total_seconds"] > 0
    assert profile["coverage"] > 0.85
    assert "replay-walk" in profile["phases"]
    assert manifest["profile_enabled"] is False


def test_serial_manifest_attributes_without_double_counting():
    results = run_full_study(names=["gzip"], cache_dir=None, jobs=1,
                             **KWARGS)
    profile = results.manifest["profile"]
    # Inline job spans re-nest under full_study: one lane, and the
    # total is the run's wall time once, not twice.
    assert profile["lanes"] == 1
    assert profile["total_seconds"] <= \
        results.manifest["total_seconds"] * 1.5
    assert profile["coverage"] > 0.85


def test_cached_run_skips_dispatch_section(tmp_path):
    cache = str(tmp_path / "cache")
    run_full_study(names=["gzip"], cache_dir=cache, jobs=1, **KWARGS)
    again = run_full_study(names=["gzip"], cache_dir=cache, jobs=1,
                           **KWARGS)
    # A pure cache hit dispatches nothing; the persisted manifest is the
    # original run's (which does carry its own dispatch summary).
    assert again.manifest["dispatch"] is not None
    assert again.manifest["cached_benchmarks"] == []


# -- figures are identical with profiling on or off ---------------------------


def test_profile_flag_does_not_change_figures(tmp_path):
    base = run_full_study(names=["gzip", "art"], cache_dir=None, jobs=1,
                          profile=False, **KWARGS)
    profiled = run_full_study(names=["gzip", "art"], cache_dir=None,
                              jobs=1, profile=True, **KWARGS)
    assert _identical_bytes(base, profiled, tmp_path)
    assert profiled.manifest["profile_enabled"] is True


def test_profile_mode_sharpens_attribution():
    run_full_study(names=["gzip"], cache_dir=None, jobs=1, profile=True,
                   **KWARGS)
    # The profile-gated region.form spans only exist in profile mode.
    names = {e["name"] for e in trace_events()}
    assert "region.form" in names


# -- Chrome trace lanes -------------------------------------------------------


def test_workers_render_as_distinct_trace_lanes(tmp_path):
    clear_trace()
    run_full_study(names=["gzip", "mcf"], cache_dir=None, jobs=2,
                   **KWARGS)
    own = os.getpid()
    pids = {e["pid"] for e in trace_events()}
    assert own in pids
    assert len(pids) >= 2  # at least one separate worker lane

    path = str(tmp_path / "trace.json")
    write_trace(path)
    with open(path) as handle:
        events = json.load(handle)["traceEvents"]
    meta = [e for e in events if e.get("ph") == "M"]
    names = {e["args"]["name"] for e in meta
             if e["name"] == "process_name"}
    assert any(label.startswith("worker-") for label in names)
    # Metadata lanes only name *other* processes, never the parent row.
    assert all(e["pid"] != own for e in meta)
    # Duration events still come first (consumers index traceEvents[0]).
    assert events[0]["ph"] == "X"
