"""Observability under failure: flight dumps, timelines and counters
survive retries, timeouts and quarantine without double-counting."""

import json
import os

import pytest

from repro.dbt import DBTConfig
from repro.harness import run_full_study
from repro.harness.faults import (FAULT_SPEC_ENV, HANG_SECONDS_ENV,
                                  JOB_TIMEOUT_ENV, RETRIES_ENV,
                                  FaultPlan)
from repro.harness.parallel import RetryPolicy, dispatch_study_jobs
from repro.obs import counter_value
from repro.perfmodel import DEFAULT_COSTS

KWARGS = dict(thresholds=[5, 50], steps_scale=0.02, include_perf=False)

DISPATCH_ARGS = dict(thresholds=[5, 50], config=DBTConfig(),
                     costs=DEFAULT_COSTS, steps_scale=0.02,
                     include_perf=False)


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    for var in (FAULT_SPEC_ENV, RETRIES_ENV, JOB_TIMEOUT_ENV,
                HANG_SECONDS_ENV):
        monkeypatch.delenv(var, raising=False)


def _dispatch(names, plan, retries=2, job_timeout=None, jobs=2):
    policy = RetryPolicy(retries=retries, job_timeout=job_timeout,
                         backoff=0.0)
    return dispatch_study_jobs(names, jobs=jobs, policy=policy, plan=plan,
                               **DISPATCH_ARGS)


# -- flight rings travel with failures ----------------------------------------


def test_worker_error_ships_its_flight_ring():
    # One error token: the pool attempt raises and ships its ring; the
    # inline fallback then succeeds without touching it.  Two names so
    # the dispatcher actually engages the pool (one name runs inline).
    plan = FaultPlan.from_spec("gzip:error:1")
    result = _dispatch(["art", "gzip"], plan, retries=0)
    assert "gzip" in result.outputs  # fallback rescued it
    ring = result.flights.get("gzip")
    assert ring, "raising worker should ship its flight ring"
    starts = [e for e in ring
              if e["kind"] == "log" and e["name"] == "job start"]
    assert starts and starts[0]["bench"] == "gzip"
    assert all(e["pid"] != os.getpid() for e in ring)


def test_timeline_records_failed_attempts_without_double_count():
    # error:1 -> first attempt raises, retry succeeds: exactly one
    # "error" record and one "ok" record, never a refunded duplicate.
    plan = FaultPlan.from_spec("gzip:error:1")
    result = _dispatch(["gzip"], plan, retries=2)
    assert "gzip" in result.outputs
    outcomes = [r.outcome for r in result.records if r.bench == "gzip"]
    assert sorted(outcomes) == ["error", "ok"]
    attempts = [r.attempt for r in result.records if r.bench == "gzip"]
    assert sorted(attempts) == [1, 2]


def test_timeout_records_timeline_and_counters():
    # Timeouts only exist on the pool path (inline execution refuses to
    # sleep), so dispatch two names to get real workers.
    plan = FaultPlan.from_spec("gzip:hang:9")
    timeouts = counter_value("faults.timeout")
    result = _dispatch(["art", "gzip"], plan, retries=0, job_timeout=1.5)
    assert result.failures["gzip"].reason == "timeout"
    records = [r for r in result.records if r.bench == "gzip"]
    assert records and all(r.outcome == "timeout" for r in records)
    assert counter_value("faults.timeout") > timeouts
    assert "art" in result.outputs  # the pool-mate was rescued


# -- flight dumps on the run level --------------------------------------------


def test_quarantine_writes_flight_dump(tmp_path, monkeypatch):
    monkeypatch.setenv(FAULT_SPEC_ENV, "gzip:error:9")
    flight_dir = str(tmp_path / "flight")
    results = run_full_study(names=["art", "gzip"], cache_dir=None,
                             jobs=2, retries=0, flight_dir=flight_dir,
                             **KWARGS)
    failed = results.manifest["failed_benchmarks"]["gzip"]
    path = failed["flight_record"]
    assert path and os.path.exists(path)
    assert os.path.dirname(path) == flight_dir
    with open(path) as handle:
        dump = json.load(handle)
    assert dump["benchmark"] == "gzip"
    assert dump["reason"] == "error"
    # retries=0: one pool attempt, then the last-resort inline fallback
    # (which also raises) — two attempts reach the quarantine record.
    assert dump["context"]["attempts"] == 2
    assert dump["worker_flight"], "error dumps carry the worker ring"
    assert counter_value("flight.dumps") >= 1
    # The surviving benchmark is untouched.
    assert "art" in results.benchmarks


def test_timeout_dump_has_no_worker_ring(tmp_path, monkeypatch):
    monkeypatch.setenv(FAULT_SPEC_ENV, "gzip:hang:9")
    flight_dir = str(tmp_path / "flight")
    results = run_full_study(names=["art", "gzip"], cache_dir=None,
                             jobs=2, retries=0, job_timeout=1.5,
                             flight_dir=flight_dir, **KWARGS)
    path = results.manifest["failed_benchmarks"]["gzip"]["flight_record"]
    with open(path) as handle:
        dump = json.load(handle)
    assert dump["reason"] == "timeout"
    assert dump["worker_flight"] is None  # the worker never shipped
    assert dump["parent_flight"]          # but the parent's ring is there


def test_no_flight_dir_resolves_to_no_dump(monkeypatch):
    monkeypatch.setenv(FAULT_SPEC_ENV, "gzip:error:9")
    results = run_full_study(names=["gzip"], cache_dir=None, jobs=2,
                             retries=0, **KWARGS)
    # cache_dir=None and no --flight-dir/env: library callers get no
    # surprise files, and the manifest says so.
    failed = results.manifest["failed_benchmarks"]["gzip"]
    assert failed["flight_record"] is None


def test_flight_dir_env_is_honoured(tmp_path, monkeypatch):
    monkeypatch.setenv(FAULT_SPEC_ENV, "gzip:error:9")
    flight_dir = str(tmp_path / "from-env")
    monkeypatch.setenv("REPRO_FLIGHT_DIR", flight_dir)
    results = run_full_study(names=["gzip"], cache_dir=None, jobs=2,
                             retries=0, **KWARGS)
    path = results.manifest["failed_benchmarks"]["gzip"]["flight_record"]
    assert path and path.startswith(flight_dir)


# -- observability state isolation across retries -----------------------------


def test_successful_retry_does_not_leak_failed_attempt_metrics(
        monkeypatch):
    # Manifest metric snapshots are cumulative across the process, so
    # compare per-run *deltas*: a run with a failed-then-retried attempt
    # must add exactly what a clean run adds — the failed attempt's
    # partial metrics were discarded with the attempt.
    keys = ("replay.runs", "replay.blocks_translated")

    def deltas(run):
        before = {k: counter_value(k) for k in keys}
        results = run()
        return results, {k: counter_value(k) - before[k] for k in keys}

    _, clean_delta = deltas(lambda: run_full_study(
        names=["gzip"], cache_dir=None, jobs=2, **KWARGS))
    monkeypatch.setenv(FAULT_SPEC_ENV, "gzip:error:1")
    faulted, fault_delta = deltas(lambda: run_full_study(
        names=["gzip"], cache_dir=None, jobs=2, retries=2, **KWARGS))
    assert "gzip" in faulted.benchmarks
    assert clean_delta["replay.runs"] > 0
    assert fault_delta == clean_delta
    dispatch = faulted.manifest["dispatch"]
    assert dispatch["outcomes"] == {"error": 1, "ok": 1}
