"""Fault tolerance: crash recovery, retries, timeouts and crash-safe caching.

The load-bearing guarantees of :mod:`repro.harness.faults` and the
resilient dispatcher: a worker crash rebuilds the pool and resubmits
only the lost jobs, a hang is killed and quarantined after
``job_timeout`` while its pool-mates are rescued, a benchmark that
exhausts its retry budget gets one inline fallback attempt before the
run completes *around* it — and no failure mode, including ``kill -9``
mid-write, can corrupt the cache or double-count a metric.
"""

import json
import os
import shutil

import pytest

from repro.dbt import DBTConfig
from repro.harness import run_full_study
from repro.harness.faults import (DEFAULT_RETRIES, FAULT_SPEC_ENV,
                                  HANG_SECONDS_ENV, JOB_TIMEOUT_ENV,
                                  RETRIES_ENV, FaultPlan, FaultSpecError,
                                  InjectedFault, fire, resolve_job_timeout,
                                  resolve_retries)
from repro.harness.parallel import (RetryPolicy, dedupe_names,
                                    dispatch_study_jobs)
from repro.harness.results import (BenchmarkResult, PerfPoint, load_shard,
                                   save_shard, shard_filename)
from repro.harness.runner import _config_fingerprint
from repro.ioutil import atomic_write_text
from repro.obs import counter_value
from repro.perfmodel import DEFAULT_COSTS

KWARGS = dict(thresholds=[5, 50], steps_scale=0.02, include_perf=False)

#: dispatch_study_jobs positional tail matching KWARGS.
DISPATCH_ARGS = dict(thresholds=[5, 50], config=DBTConfig(),
                     costs=DEFAULT_COSTS, steps_scale=0.02,
                     include_perf=False)

#: A long injected "hang" that any test timeout comfortably beats.
HANG = "30"


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    """Fault-policy environment must never leak between tests."""
    for var in (FAULT_SPEC_ENV, RETRIES_ENV, JOB_TIMEOUT_ENV,
                HANG_SECONDS_ENV):
        monkeypatch.delenv(var, raising=False)


def _dispatch(names, plan, retries=2, job_timeout=None, jobs=2):
    """Run the dispatcher with zero backoff (tests shouldn't sleep)."""
    policy = RetryPolicy(retries=retries, job_timeout=job_timeout,
                         backoff=0.0)
    return dispatch_study_jobs(names, jobs=jobs, policy=policy, plan=plan,
                               **DISPATCH_ARGS)


def _identical_bytes(results_a, results_b, tmp_path):
    """Byte-compare two StudyResults after manifest normalisation."""
    paths = []
    for i, results in enumerate((results_a, results_b)):
        manifest, results.manifest = results.manifest, None
        path = str(tmp_path / f"cmp{i}.json")
        results.save(path)
        results.manifest = manifest
        paths.append(path)
    with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
        return a.read() == b.read()


# -- fault-spec parsing -------------------------------------------------------


def test_spec_parses_entries_and_counts():
    plan = FaultPlan.from_spec("gzip:crash:2, mcf:hang\nshard:torn-write:3")
    rules = {(r.target, r.kind): r.remaining for r in plan.rules}
    assert rules == {("gzip", "crash"): 2, ("mcf", "hang"): 1,
                     ("shard", "torn-write"): 3}


def test_spec_empty_and_unset():
    assert FaultPlan.from_spec(None).rules == []
    assert FaultPlan.from_spec("  ").rules == []
    assert FaultPlan.from_env().rules == []


def test_spec_from_env(monkeypatch):
    monkeypatch.setenv(FAULT_SPEC_ENV, "art:error:4")
    plan = FaultPlan.from_env()
    assert plan.rules[0].kind == "error"
    assert plan.rules[0].remaining == 4


@pytest.mark.parametrize("spec", [
    "gzip",                    # no kind
    "gzip:crash:1:extra",      # too many fields
    "gzip:segfault",           # unknown kind
    "gzip:crash:zero",         # non-integer count
    "gzip:crash:0",            # count must be >= 1
    "gzip:torn-write",         # torn-write targets the shard writer
    "shard:crash",             # shard only takes torn-write
])
def test_spec_rejects_malformed_entries(spec):
    with pytest.raises(FaultSpecError):
        FaultPlan.from_spec(spec)


def test_draw_consumes_tokens_and_counts():
    plan = FaultPlan.from_spec("gzip:crash:2")
    injected = counter_value("faults.injected.crash")
    assert plan.draw("gzip") == "crash"
    assert plan.draw("gzip") == "crash"
    assert plan.draw("gzip") is None  # budget spent
    assert plan.draw("art") is None   # wrong target
    assert counter_value("faults.injected.crash") == injected + 2


def test_refund_returns_token_to_the_plan():
    plan = FaultPlan.from_spec("mcf:hang:1")
    refunded = counter_value("faults.refunded")
    assert plan.draw("mcf") == "hang"
    assert plan.draw("mcf") is None
    plan.refund("mcf", "hang")
    assert counter_value("faults.refunded") == refunded + 1
    assert plan.draw("mcf") == "hang"  # the schedule survives


def test_draw_torn_write_and_any_hangs():
    plan = FaultPlan.from_spec("shard:torn-write:1,mcf:hang:1")
    assert plan.any_hangs()
    assert plan.draw_torn_write()
    assert not plan.draw_torn_write()
    plan.draw("mcf")
    assert not plan.any_hangs()


def test_fire_inline_raises_instead_of_killing_the_parent():
    # Outside a pool worker every fault kind degrades to an exception —
    # an injected "crash" must never os._exit the test process.
    for kind in ("crash", "hang", "error"):
        with pytest.raises(InjectedFault):
            fire(kind, "gzip")
    with pytest.raises(ValueError, match="unknown fault kind"):
        fire("segfault", "gzip")


# -- policy knob resolution ---------------------------------------------------


def test_resolve_retries(monkeypatch):
    assert resolve_retries(None) == DEFAULT_RETRIES
    assert resolve_retries(0) == 0
    monkeypatch.setenv(RETRIES_ENV, "5")
    assert resolve_retries(None) == 5
    assert resolve_retries(1) == 1  # explicit beats the environment
    monkeypatch.setenv(RETRIES_ENV, "nope")
    with pytest.raises(ValueError, match="must be an integer"):
        resolve_retries(None)
    with pytest.raises(ValueError, match=">= 0"):
        resolve_retries(-1)


def test_resolve_job_timeout(monkeypatch):
    assert resolve_job_timeout(None) is None
    assert resolve_job_timeout(2.5) == 2.5
    monkeypatch.setenv(JOB_TIMEOUT_ENV, "7.5")
    assert resolve_job_timeout(None) == 7.5
    monkeypatch.setenv(JOB_TIMEOUT_ENV, "soon")
    with pytest.raises(ValueError, match="must be a number"):
        resolve_job_timeout(None)
    with pytest.raises(ValueError, match="> 0"):
        resolve_job_timeout(0)


def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(backoff=0.1, backoff_cap=0.35)
    assert policy.delay(0) == 0.0
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(5) == pytest.approx(0.35)  # capped
    assert RetryPolicy(backoff=0.0).delay(3) == 0.0


# -- atomic cache writes (satellite: non-atomic save) -------------------------


def test_atomic_write_replaces_only_complete_files(tmp_path):
    path = str(tmp_path / "out.json")
    atomic_write_text(path, "old-content")
    atomic_write_text(path, "new-content-that-is-longer", tear=True)
    # The tear left the destination untouched and a partial temp behind —
    # exactly the debris of a kill -9 mid-write.
    with open(path) as f:
        assert f.read() == "old-content"
    debris = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
    assert len(debris) == 1
    # The next (healthy) writer simply wins; no unrecoverable state.
    atomic_write_text(path, "recovered")
    with open(path) as f:
        assert f.read() == "recovered"


def test_torn_shard_write_recovers_on_next_run(tmp_path, monkeypatch):
    cache_dir = str(tmp_path / "cache")
    monkeypatch.setenv(FAULT_SPEC_ENV, "shard:torn-write:1")
    first = run_full_study(names=["art", "gzip"], cache_dir=cache_dir,
                           jobs=1, **KWARGS)
    # art's shard write (the first) was torn: no shard file, no tear.
    confkey = _config_fingerprint(KWARGS["thresholds"], DBTConfig(),
                                  DEFAULT_COSTS, KWARGS["steps_scale"],
                                  False)
    assert not os.path.exists(
        os.path.join(cache_dir, shard_filename("art", confkey)))
    assert os.path.exists(
        os.path.join(cache_dir, shard_filename("gzip", confkey)))
    # A fault-free rerun recomputes exactly the missing shard and agrees.
    monkeypatch.delenv(FAULT_SPEC_ENV)
    second = run_full_study(names=["art", "gzip"], cache_dir=cache_dir,
                            jobs=1, **KWARGS)
    assert second.manifest["cached_benchmarks"] == ["gzip"]
    assert first.benchmarks["art"].sd_bp == second.benchmarks["art"].sd_bp


# -- shard payload validation (satellite: filename trusted blindly) -----------


def test_load_shard_rejects_mismatched_payload(tmp_path):
    result = BenchmarkResult(
        name="art", suite="fp", thresholds=[5], sd_bp={5: 0.1},
        bp_mismatch={5: 0.0}, sd_cp={5: None}, sd_lp={5: None},
        lp_mismatch={5: None}, train_sd_bp=0.2, train_bp_mismatch=0.1,
        train_sd_cp=None, train_sd_lp=None, profiling_ops={5: 10},
        train_ops=100, avep_ops=5)
    path = str(tmp_path / shard_filename("gzip", "fp123"))
    save_shard(path, result, "fp123", 1.0)
    # The filename says gzip, the payload says art: never trusted.
    with pytest.raises(ValueError, match="shard benchmark mismatch"):
        load_shard(path, expect_name="gzip", expect_fingerprint="fp123")
    with pytest.raises(ValueError, match="shard fingerprint mismatch"):
        load_shard(path, expect_name="art", expect_fingerprint="other")
    loaded, seconds = load_shard(path, expect_name="art",
                                 expect_fingerprint="fp123")
    assert loaded.name == "art" and seconds == 1.0


def test_load_shard_rejects_lying_payload_header(tmp_path):
    # A payload whose header matches but whose embedded result does not
    # (a hand-edited or spliced file) is still rejected.
    path = str(tmp_path / "shard.json")
    payload = {"version": 6, "benchmark": "gzip", "fingerprint": "fp",
               "seconds": 1.0,
               "result": {"name": "art", "suite": "fp", "thresholds": [],
                          "sd_bp": {}, "bp_mismatch": {}, "sd_cp": {},
                          "sd_lp": {}, "lp_mismatch": {},
                          "train_sd_bp": None, "train_bp_mismatch": None,
                          "train_sd_cp": None, "train_sd_lp": None,
                          "profiling_ops": {}, "train_ops": 0,
                          "avep_ops": 0, "num_regions": {}, "perf": {}}}
    with open(path, "w") as f:
        json.dump(payload, f)
    with pytest.raises(ValueError, match="shard result mismatch"):
        load_shard(path, expect_name="gzip", expect_fingerprint="fp")


def test_misfiled_shard_is_stale_and_recomputed(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = run_full_study(names=["art", "gzip"], cache_dir=cache_dir,
                           jobs=1, **KWARGS)
    confkey = _config_fingerprint(KWARGS["thresholds"], DBTConfig(),
                                  DEFAULT_COSTS, KWARGS["steps_scale"],
                                  False)
    # Copy art's shard over gzip's: the filename now lies.
    shutil.copyfile(
        os.path.join(cache_dir, shard_filename("art", confkey)),
        os.path.join(cache_dir, shard_filename("gzip", confkey)))
    for fname in os.listdir(cache_dir):
        if fname.startswith("study-"):
            os.remove(os.path.join(cache_dir, fname))
    stale = counter_value("cache.shard.stale")
    second = run_full_study(names=["art", "gzip"], cache_dir=cache_dir,
                            jobs=1, **KWARGS)
    assert counter_value("cache.shard.stale") == stale + 1
    assert second.manifest["cached_benchmarks"] == ["art"]
    # gzip was recomputed, not served art's numbers under its name.
    assert second.benchmarks["gzip"].sd_bp == \
        first.benchmarks["gzip"].sd_bp


# -- duplicate names + perf_relative guard (satellite) ------------------------


def test_dedupe_names_warns_and_counts():
    dropped = counter_value("study.duplicate_names")
    assert dedupe_names(["gzip", "art", "gzip", "gzip"]) == ["gzip", "art"]
    assert counter_value("study.duplicate_names") == dropped + 2
    assert dedupe_names(["art"]) == ["art"]
    assert counter_value("study.duplicate_names") == dropped + 2


def test_run_full_study_drops_duplicates():
    results = run_full_study(names=["gzip", "gzip"], cache_dir=None,
                             jobs=1, **KWARGS)
    assert list(results.benchmarks) == ["gzip"]
    assert results.manifest["benchmarks"] == ["gzip"]


def test_perf_relative_zero_total_yields_none():
    point = dict(unoptimized=0.0, optimized=0.0, side_exits=0.0,
                 translation=0.0, num_side_exits=0, optimized_fraction=0.0)
    result = BenchmarkResult(
        name="x", suite="int", thresholds=[1, 5], sd_bp={}, bp_mismatch={},
        sd_cp={}, sd_lp={}, lp_mismatch={}, train_sd_bp=None,
        train_bp_mismatch=None, train_sd_cp=None, train_sd_lp=None,
        profiling_ops={}, train_ops=0, avep_ops=0,
        perf={1: PerfPoint(total=10.0, **point),
              5: PerfPoint(total=0.0, **point)})
    assert result.perf_relative() == {1: 1.0, 5: None}
    with pytest.raises(KeyError):
        result.perf_relative(base_threshold=99)


# -- crash recovery (tentpole) ------------------------------------------------


def test_crash_breaks_pool_then_retry_succeeds():
    names = ["art", "gzip", "swim"]
    rebuilds = counter_value("faults.pool_rebuild")
    charged = counter_value("retry.crash")
    absorbed = []
    policy = RetryPolicy(retries=2, backoff=0.0)
    dispatch = dispatch_study_jobs(
        names, jobs=2, policy=policy, plan=FaultPlan.from_spec("gzip:crash:1"),
        on_output=lambda output: absorbed.append(output.name),
        **DISPATCH_ARGS)
    assert set(dispatch.outputs) == set(names)
    assert dispatch.failures == {}
    # The pool was rebuilt and only the lost jobs were charged/resubmitted
    # (at most the two in-flight at the break, never the completed ones):
    assert counter_value("faults.pool_rebuild") >= rebuilds + 1
    assert 1 <= counter_value("retry.crash") - charged <= 2
    # ...and no benchmark was absorbed twice.
    assert sorted(absorbed) == sorted(names)


def test_error_fault_retries_without_pool_rebuild():
    rebuilds = counter_value("faults.pool_rebuild")
    errors = counter_value("retry.error")
    dispatch = _dispatch(["art", "gzip"], FaultPlan.from_spec("gzip:error:1"))
    assert set(dispatch.outputs) == {"art", "gzip"}
    assert dispatch.failures == {}
    # An in-worker exception is an ordinary failure: the pool survives.
    assert counter_value("faults.pool_rebuild") == rebuilds
    assert counter_value("retry.error") == errors + 1


def test_exhausted_retries_fall_back_inline():
    # Three crashes burn the whole pool budget (retries=2); the fourth,
    # inline, attempt draws no token and succeeds.
    fallback = counter_value("faults.fallback.success")
    dispatch = _dispatch(["art", "gzip"],
                         FaultPlan.from_spec("gzip:crash:3"), retries=2)
    assert set(dispatch.outputs) == {"art", "gzip"}
    assert dispatch.failures == {}
    assert counter_value("faults.fallback.success") >= fallback + 1


def test_hang_is_killed_and_quarantined(monkeypatch):
    monkeypatch.setenv(HANG_SECONDS_ENV, HANG)
    timeouts = counter_value("faults.timeout")
    quarantined = counter_value("faults.quarantined")
    dispatch = _dispatch(["art", "gzip"], FaultPlan.from_spec("gzip:hang:1"),
                         job_timeout=2.0)
    # The hung benchmark is quarantined without wasting retry windows;
    # its innocent pool-mate still completes.
    assert set(dispatch.outputs) == {"art"}
    failure = dispatch.failures["gzip"]
    assert failure.reason == "timeout"
    assert "job timeout" in failure.error
    assert counter_value("faults.timeout") == timeouts + 1
    assert counter_value("faults.quarantined") == quarantined + 1


def test_inline_path_retries_and_quarantines():
    # jobs=1 exercises the serial dispatcher under the same policy.
    resubmitted = counter_value("retry.resubmitted")
    dispatch = _dispatch(["gzip"], FaultPlan.from_spec("gzip:error:1"),
                         retries=1, jobs=1)
    assert set(dispatch.outputs) == {"gzip"}
    assert counter_value("retry.resubmitted") == resubmitted + 1

    dispatch = _dispatch(["art", "gzip"],
                         FaultPlan.from_spec("gzip:error:9"), retries=1,
                         jobs=1)
    assert set(dispatch.outputs) == {"art"}
    assert dispatch.failures["gzip"].reason == "error"
    assert dispatch.failures["gzip"].attempts == 2


# -- quarantine end-to-end ----------------------------------------------------


def test_quarantined_run_completes_with_manifest_and_no_aggregate(
        tmp_path, monkeypatch):
    cache_dir = str(tmp_path / "cache")
    monkeypatch.setenv(FAULT_SPEC_ENV, "gzip:error:9")
    results = run_full_study(names=["art", "gzip"], cache_dir=cache_dir,
                             jobs=1, retries=1, **KWARGS)
    assert set(results.benchmarks) == {"art"}
    failed = results.manifest["failed_benchmarks"]
    assert failed["gzip"]["reason"] == "error"
    assert failed["gzip"]["attempts"] == 2
    # The aggregate is withheld (a "hit" would never retry gzip), but
    # art's shard persists, so the healthy rerun only recomputes gzip.
    assert not any(f.startswith("study-") for f in os.listdir(cache_dir))
    monkeypatch.delenv(FAULT_SPEC_ENV)
    retry = run_full_study(names=["art", "gzip"], cache_dir=cache_dir,
                           jobs=1, **KWARGS)
    assert set(retry.benchmarks) == {"art", "gzip"}
    assert retry.manifest["failed_benchmarks"] == {}
    assert retry.manifest["cached_benchmarks"] == ["art"]
    assert any(f.startswith("study-") for f in os.listdir(cache_dir))


def test_acceptance_crash_retried_hang_quarantined_bytes_identical(
        tmp_path, monkeypatch):
    # The issue's acceptance scenario: one crash + one hang injected into
    # a --jobs 4 run.  The study completes, quarantines only the hung
    # benchmark, retries the crashed one successfully, and the surviving
    # figure data is byte-identical to a fault-free --jobs 1 run.
    names = ["art", "gzip", "mcf", "swim"]
    serial = run_full_study(names=names, cache_dir=None, jobs=1, **KWARGS)

    monkeypatch.setenv(HANG_SECONDS_ENV, HANG)
    monkeypatch.setenv(FAULT_SPEC_ENV, "gzip:crash:1,mcf:hang:1")
    faulted = run_full_study(names=names, cache_dir=None, jobs=4,
                             retries=2, job_timeout=2.0, **KWARGS)

    assert set(faulted.benchmarks) == {"art", "gzip", "swim"}
    assert list(faulted.manifest["failed_benchmarks"]) == ["mcf"]
    assert faulted.manifest["failed_benchmarks"]["mcf"]["reason"] \
        == "timeout"
    del serial.benchmarks["mcf"]
    assert _identical_bytes(serial, faulted, tmp_path)


def test_metrics_not_double_counted_across_retries():
    # A retried benchmark's replay counters must land exactly once: the
    # faulted run and the clean run agree on every replay signal.
    def _translated(spec):
        before = counter_value("replay.blocks_translated")
        dispatch = _dispatch(["gzip"], FaultPlan.from_spec(spec),
                             retries=2, jobs=1)
        assert set(dispatch.outputs) == {"gzip"}
        # Fold the worker-shipped state the way the runner does.
        from repro.obs import merge_state
        merge_state(dispatch.outputs["gzip"].metrics)
        return counter_value("replay.blocks_translated") - before

    clean = _translated("")
    assert clean > 0
    assert _translated("gzip:error:2") == clean


# -- CLI surface --------------------------------------------------------------


def test_cli_parses_retry_flags():
    from repro.harness.cli import build_parser
    args = build_parser().parse_args([])
    assert args.retries is None and args.job_timeout is None
    args = build_parser().parse_args(["--retries", "0",
                                      "--job-timeout", "2.5"])
    assert args.retries == 0
    assert args.job_timeout == 2.5


def test_cli_exit_code_on_quarantine(capsys, monkeypatch):
    from repro.harness.cli import EXIT_QUARANTINE, main
    monkeypatch.setenv(FAULT_SPEC_ENV, "gzip:error:9")
    code = main(["--benchmarks", "gzip", "--quick", "--no-perf",
                 "--no-cache", "--stats", "--jobs", "1", "--retries", "0"])
    assert code == EXIT_QUARANTINE == 3
    err = capsys.readouterr().err
    assert "quarantined: gzip" in err
    assert "error after 1 attempts" in err
