"""Figure-builder tests on a small two-benchmark study."""

import pytest

from repro.harness import FIGURES, StudyResults, render
from repro.harness import figures as fig
from repro.harness import run_full_study


@pytest.fixture(scope="module")
def small_results():
    return run_full_study(names=["gzip", "swim"], thresholds=[5, 50, 500],
                          steps_scale=0.02, include_perf=True,
                          cache_dir=None)


def test_registry_covers_every_figure():
    assert sorted(FIGURES) == [8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18]


@pytest.mark.parametrize("number", sorted([8, 9, 10, 11, 12, 13, 14, 15,
                                           16, 17, 18]))
def test_every_figure_builds_and_renders(small_results, number):
    table = FIGURES[number](small_results)
    text = render(table)
    assert table.title in text
    assert len(table.rows) >= 3  # one per threshold at least


def test_fig08_columns(small_results):
    table = fig.fig08_sd_bp(small_results)
    assert table.columns == ["threshold", "int", "fp", "int(train)",
                             "fp(train)"]
    # threshold labels are paper-nominal
    assert table.rows[0][0] == "50"
    assert table.rows[-1][0] == "5k"


def test_fig09_has_one_column_per_int_benchmark(small_results):
    table = fig.fig09_sd_bp_int(small_results)
    assert table.columns == ["threshold", "gzip"]
    assert table.rows[-1][0] == "train"


def test_fig12_covers_fp(small_results):
    table = fig.fig12_bp_mismatch_fp(small_results)
    assert table.columns == ["threshold", "swim"]


def test_fig17_normalised_to_base(small_results):
    table = fig.fig17_performance(small_results)
    values = [row[1] for row in table.rows if row[1] is not None]
    assert values  # some INT perf data
    assert all(v > 0 for v in values)


def test_fig18_normalised_to_train(small_results):
    table = fig.fig18_overhead(small_results)
    # small thresholds use a tiny fraction of the training-run ops
    first_row = table.rows[0]
    assert first_row[3] is not None and first_row[3] < 1.0
