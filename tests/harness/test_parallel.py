"""Parallel fan-out and shard-cache semantics.

The load-bearing guarantees: ``--jobs N`` results are byte-identical to
``--jobs 1`` (after stripping the run manifest, which carries wall
times), and the sharded cache reuses exactly the per-benchmark work that
is still valid — hit, miss, partial reuse, and stale-format handling.
"""

import json
import os

import pytest

from repro.harness import run_full_study
from repro.harness.parallel import JOBS_ENV, resolve_jobs
from repro.harness.runner import (_config_fingerprint, _fingerprint,
                                  DEFAULT_CACHE_DIR)
from repro.dbt import DBTConfig
from repro.obs import counter_value
from repro.perfmodel import DEFAULT_COSTS

KWARGS = dict(thresholds=[5, 50], steps_scale=0.02, include_perf=False)


def _identical_bytes(results_a, results_b, tmp_path):
    """Byte-compare two StudyResults after manifest normalisation."""
    paths = []
    for i, results in enumerate((results_a, results_b)):
        manifest, results.manifest = results.manifest, None
        path = str(tmp_path / f"cmp{i}.json")
        results.save(path)
        results.manifest = manifest
        paths.append(path)
    with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
        return a.read() == b.read()


# -- jobs resolution ----------------------------------------------------------


def test_resolve_jobs_explicit_and_default(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) == (os.cpu_count() or 1)


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "7")
    assert resolve_jobs(None) == 7
    assert resolve_jobs(2) == 2  # explicit beats the environment
    monkeypatch.setenv(JOBS_ENV, "nope")
    with pytest.raises(ValueError, match="must be an integer"):
        resolve_jobs(None)


def test_resolve_jobs_rejects_nonpositive():
    with pytest.raises(ValueError, match=">= 1"):
        resolve_jobs(0)


def test_cli_parses_jobs():
    from repro.harness.cli import build_parser
    assert build_parser().parse_args([]).jobs is None
    assert build_parser().parse_args(["--jobs", "4"]).jobs == 4


# -- parallel == serial -------------------------------------------------------


def test_parallel_results_identical_to_serial(tmp_path):
    names = ["art", "gzip", "swim"]
    serial = run_full_study(names=names, cache_dir=None, jobs=1, **KWARGS)
    parallel = run_full_study(names=names, cache_dir=None, jobs=2,
                              **KWARGS)
    assert _identical_bytes(serial, parallel, tmp_path)
    assert parallel.manifest["jobs"] == 2
    assert serial.manifest["jobs"] == 1


def test_parallel_merges_worker_observability():
    from repro.obs import counter_value
    translated = counter_value("replay.blocks_translated")
    seconds = counter_value("study.benchmark_seconds")  # counter: 0
    results = run_full_study(names=["art", "gzip"], cache_dir=None,
                             jobs=2, **KWARGS)
    # Worker-side replay counters must land in the parent registry...
    assert counter_value("replay.blocks_translated") > translated
    # ...and the manifest's metric snapshot must include them.
    counters = results.manifest["metrics"]["counters"]
    assert counters["replay.blocks_translated"] > 0
    hists = results.manifest["metrics"]["histograms"]
    assert hists["study.benchmark_seconds"]["count"] >= 2
    # Worker spans are merged into the parent's trace buffer.
    from repro.obs import trace_events
    names = {e["name"] for e in trace_events()}
    assert "study_benchmark" in names


# -- shard cache --------------------------------------------------------------


def test_shards_reused_across_name_subsets(tmp_path):
    cache_dir = str(tmp_path / "cache")
    run_full_study(names=["art"], cache_dir=cache_dir, jobs=1, **KWARGS)
    hits = counter_value("cache.shard.hit")
    misses = counter_value("cache.shard.miss")
    # Growing the subset only computes the new benchmark: art's shard is
    # a hit, gzip's a miss.
    results = run_full_study(names=["art", "gzip"], cache_dir=cache_dir,
                             jobs=1, **KWARGS)
    assert counter_value("cache.shard.hit") == hits + 1
    assert counter_value("cache.shard.miss") == misses + 1
    assert set(results.benchmarks) == {"art", "gzip"}
    assert results.manifest["cached_benchmarks"] == ["art"]


def test_shard_resume_after_interrupted_run(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = run_full_study(names=["art", "gzip"], cache_dir=cache_dir,
                           jobs=1, **KWARGS)
    # Simulate an interrupted run: the aggregate never got written, but
    # the per-benchmark shards did.
    for fname in os.listdir(cache_dir):
        if fname.startswith("study-"):
            os.remove(os.path.join(cache_dir, fname))
    hits = counter_value("cache.shard.hit")
    second = run_full_study(names=["art", "gzip"], cache_dir=cache_dir,
                            jobs=1, **KWARGS)
    assert counter_value("cache.shard.hit") == hits + 2
    assert second.manifest["cached_benchmarks"] == ["art", "gzip"]
    assert first.benchmarks["art"].sd_bp == second.benchmarks["art"].sd_bp


def test_aggregate_hit_skips_shard_loading_counters(tmp_path):
    cache_dir = str(tmp_path / "cache")
    run_full_study(names=["art"], cache_dir=cache_dir, jobs=1, **KWARGS)
    agg_hits = counter_value("cache.hit")
    results = run_full_study(names=["art"], cache_dir=cache_dir, jobs=1,
                             **KWARGS)
    assert counter_value("cache.hit") == agg_hits + 1
    assert "art" in results.benchmarks


def test_v5_monolithic_cache_is_stale_and_recomputed(tmp_path):
    cache_dir = str(tmp_path / "cache")
    os.makedirs(cache_dir)
    key = _fingerprint(["art"], KWARGS["thresholds"], DBTConfig(),
                       DEFAULT_COSTS, KWARGS["steps_scale"], False)
    path = os.path.join(cache_dir, f"study-{key}.json")
    with open(path, "w") as f:
        json.dump({"version": 5, "manifest": None,
                   "benchmarks": {"art": {}}}, f)
    stale = counter_value("cache.stale")
    results = run_full_study(names=["art"], cache_dir=cache_dir, jobs=1,
                             **KWARGS)
    assert counter_value("cache.stale") == stale + 1
    assert "art" in results.benchmarks  # recomputed despite the v5 file
    with open(path) as f:  # and rewritten in the sharded v6 layout
        assert json.load(f)["version"] == 6


def test_corrupt_shard_recomputed(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = run_full_study(names=["art"], cache_dir=cache_dir, jobs=1,
                           **KWARGS)
    for fname in os.listdir(cache_dir):
        path = os.path.join(cache_dir, fname)
        if fname.startswith("shard-"):
            with open(path, "w") as f:
                f.write("{ not json")
        else:
            os.remove(path)  # force the per-shard path
    stale = counter_value("cache.shard.stale")
    second = run_full_study(names=["art"], cache_dir=cache_dir, jobs=1,
                            **KWARGS)
    assert counter_value("cache.shard.stale") == stale + 1
    assert first.benchmarks["art"].sd_bp == second.benchmarks["art"].sd_bp


def test_missing_shard_behind_aggregate_recovers(tmp_path):
    cache_dir = str(tmp_path / "cache")
    run_full_study(names=["art", "gzip"], cache_dir=cache_dir, jobs=1,
                   **KWARGS)
    confkey = _config_fingerprint(KWARGS["thresholds"], DBTConfig(),
                                  DEFAULT_COSTS, KWARGS["steps_scale"],
                                  False)
    os.remove(os.path.join(cache_dir, f"shard-gzip-{confkey}.json"))
    results = run_full_study(names=["art", "gzip"], cache_dir=cache_dir,
                             jobs=1, **KWARGS)
    assert set(results.benchmarks) == {"art", "gzip"}
    assert results.manifest["cached_benchmarks"] == ["art"]


# -- fingerprint normalisation ------------------------------------------------


def test_fingerprint_normalises_order():
    args = (DBTConfig(), DEFAULT_COSTS, 0.5, True)
    assert _fingerprint(["b", "a"], [50, 5], *args) == \
        _fingerprint(["a", "b"], [5, 50], *args)
    assert _config_fingerprint([500, 5], *args) == \
        _config_fingerprint([5, 500], *args)


def test_fingerprint_distinguishes_configs():
    args = (DEFAULT_COSTS, 1.0, True)
    base = _fingerprint(["a"], [5], DBTConfig(), *args)
    assert _fingerprint(["a"], [5], DBTConfig(pool_trigger_size=3),
                        *args) != base
    assert _fingerprint(["a", "b"], [5], DBTConfig(), *args) != base


def test_default_cache_dir_is_normalised():
    assert ".." not in DEFAULT_CACHE_DIR
    assert os.path.isabs(DEFAULT_CACHE_DIR)
