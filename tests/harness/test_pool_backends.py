"""Pool backends: selection, equivalence, batching and warm reuse.

The load-bearing guarantee of :mod:`repro.harness.pool`: figure data is
byte-identical across every backend × jobs × batch combination — the
backends differ only in transport cost.  On top of that, the dispatch
engine's failure semantics must be batch-aware (a failing member never
charges its batch-mates), warm pools must actually be reused, an
unpicklable job must fail fast with the original pickling error instead
of an opaque pool break, and a drawn fault token must be refunded when
the attempt dies of an unrelated cause before the fault fires.
"""

import pytest

from repro.dbt import DBTConfig
from repro.harness import run_full_study
from repro.harness.faults import FaultPlan
from repro.harness.pool import (BACKENDS, BATCH_ENV, JOBS_ENV, POOL_ENV,
                                RetryPolicy, dispatch_study_jobs,
                                resolve_batch, resolve_jobs, resolve_pool)
from repro.obs import counter_value
from repro.perfmodel import DEFAULT_COSTS

KWARGS = dict(thresholds=[5, 50], steps_scale=0.02, include_perf=False)

DISPATCH_ARGS = dict(thresholds=[5, 50], config=DBTConfig(),
                     costs=DEFAULT_COSTS, steps_scale=0.02,
                     include_perf=False)


def _dispatch(names, plan=None, retries=2, jobs=2, pool=None, batch=None,
              **overrides):
    policy = RetryPolicy(retries=retries, backoff=0.0)
    args = dict(DISPATCH_ARGS, **overrides)
    return dispatch_study_jobs(
        names, jobs=jobs, policy=policy,
        plan=plan if plan is not None else FaultPlan.from_spec(None),
        pool=pool, batch=batch, **args)


def _identical_bytes(results_a, results_b, tmp_path):
    """Byte-compare two StudyResults after manifest normalisation."""
    paths = []
    for i, results in enumerate((results_a, results_b)):
        manifest, results.manifest = results.manifest, None
        path = str(tmp_path / f"cmp{i}.json")
        results.save(path)
        results.manifest = manifest
        paths.append(path)
    with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
        return a.read() == b.read()


# -- knob resolution (satellite: empty-but-set env vars) ----------------------


def test_resolve_jobs_rejects_empty_env(monkeypatch):
    # An empty-but-set REPRO_JOBS is a broken shell expansion, and
    # silently running on every CPU is the worst possible reading.
    monkeypatch.setenv(JOBS_ENV, "")
    with pytest.raises(ValueError, match="must be an integer"):
        resolve_jobs(None)
    assert resolve_jobs(2) == 2  # explicit never consults the env


def test_resolve_pool_explicit_env_and_validation(monkeypatch):
    assert resolve_pool(None) is None
    assert resolve_pool("batched") == "batched"
    monkeypatch.setenv(POOL_ENV, "process")
    assert resolve_pool(None) == "process"
    assert resolve_pool("inprocess") == "inprocess"  # explicit beats env
    monkeypatch.setenv(POOL_ENV, "")
    with pytest.raises(ValueError, match="pool backend must be one of"):
        resolve_pool(None)
    with pytest.raises(ValueError, match="pool backend must be one of"):
        resolve_pool("threads")


def test_resolve_batch_env_and_validation(monkeypatch):
    assert resolve_batch(None) is None
    assert resolve_batch(3) == 3
    monkeypatch.setenv(BATCH_ENV, "4")
    assert resolve_batch(None) == 4
    monkeypatch.setenv(BATCH_ENV, "")
    with pytest.raises(ValueError, match="must be an integer"):
        resolve_batch(None)
    with pytest.raises(ValueError, match=">= 1"):
        resolve_batch(0)


def test_batch_requires_batched_backend():
    for pool in ("process", "inprocess"):
        with pytest.raises(ValueError, match="batch > 1 requires"):
            _dispatch(["gzip", "art"], pool=pool, batch=2)


def test_cli_parses_pool_and_batch():
    from repro.harness.cli import build_parser
    args = build_parser().parse_args([])
    assert args.pool is None and args.batch is None
    args = build_parser().parse_args(["--pool", "batched", "--batch", "3"])
    assert args.pool == "batched"
    assert args.batch == 3


def test_backend_registry_names():
    assert set(BACKENDS) == {"inprocess", "process", "batched"}
    for name, backend_cls in BACKENDS.items():
        assert backend_cls.name == name


# -- backend equivalence (the non-negotiable invariant) -----------------------


def test_every_backend_produces_identical_bytes(tmp_path):
    names = ["gzip", "mcf", "art"]
    cells = [
        dict(jobs=1),                              # inferred: inprocess
        dict(jobs=2, pool="process"),
        dict(jobs=2, pool="batched", batch=2),
        dict(jobs=3, pool="batched", batch=1),
    ]
    runs = []
    deltas = []
    for cell in cells:
        translated = counter_value("replay.blocks_translated")
        results = run_full_study(names=names, cache_dir=None, **cell,
                                 **KWARGS)
        deltas.append(counter_value("replay.blocks_translated") -
                      translated)
        runs.append(results)
    baseline = runs[0]
    assert baseline.manifest["pool"] == "inprocess"
    for cell, results in zip(cells[1:], runs[1:]):
        assert _identical_bytes(baseline, results, tmp_path), cell
        assert results.manifest["pool"] == cell["pool"]
    # The observability merge is lossless: every cell lands exactly the
    # same replay counters in the parent registry.
    assert len(set(deltas)) == 1 and deltas[0] > 0


def test_batched_timelines_carry_backend_and_batch_size():
    results = run_full_study(names=["gzip", "mcf", "art"], cache_dir=None,
                             jobs=2, pool="batched", batch=2, **KWARGS)
    manifest = results.manifest
    assert manifest["pool"] == "batched"
    assert manifest["batch_size"] == 2
    summary = manifest["dispatch"]
    assert summary["backends"] == {"batched": 3}
    assert summary["max_batch_size"] == 2
    sizes = sorted(r["batch_size"] for r in summary["records_detail"])
    assert sizes == [1, 2, 2]  # two full members + the leftover
    assert all(r["backend"] == "batched"
               for r in summary["records_detail"])


# -- batch failure semantics --------------------------------------------------


def test_error_inside_batch_spares_batch_mates():
    rebuilds = counter_value("faults.pool_rebuild")
    errors = counter_value("retry.error")
    dispatch = _dispatch(["art", "gzip", "mcf", "swim"],
                         plan=FaultPlan.from_spec("gzip:error:1"),
                         retries=2, jobs=2, pool="batched", batch=2)
    assert set(dispatch.outputs) == {"art", "gzip", "mcf", "swim"}
    assert dispatch.failures == {}
    # An in-batch exception is contained per member: the pool survives
    # and only the failing member is charged — its batch-mate's single
    # attempt succeeded.
    assert counter_value("faults.pool_rebuild") == rebuilds
    assert counter_value("retry.error") == errors + 1
    per_bench = {}
    for record in dispatch.records:
        per_bench.setdefault(record.bench, []).append(record.outcome)
    assert per_bench["gzip"] == ["error", "ok"]
    assert per_bench["art"] == ["ok"]


# -- warm worker reuse --------------------------------------------------------


def test_warm_pool_reused_across_dispatches():
    misses = counter_value("pool.warm_miss")
    hits = counter_value("pool.warm_hit")
    first = _dispatch(["art", "gzip"], jobs=2, pool="process")
    second = _dispatch(["art", "gzip"], jobs=2, pool="process")
    assert counter_value("pool.warm_miss") == misses + 1
    assert counter_value("pool.warm_hit") == hits + 1
    first_pids = {o.pid for o in first.outputs.values()}
    second_pids = {o.pid for o in second.outputs.values()}
    # The second dispatch adopted the parked pool: same worker processes.
    assert first_pids & second_pids


# -- pickling failures (satellite: swallowed into an empty payload) -----------


def test_unpicklable_job_fails_fast_with_original_error():
    class LocalConfig(DBTConfig):
        """Local classes cannot pickle by reference."""

    rebuilds = counter_value("faults.pool_rebuild")
    errors = counter_value("retry.error")
    fallback = counter_value("faults.fallback.success")
    dispatch = _dispatch(["gzip"], retries=0, jobs=2, pool="process",
                         config=LocalConfig())
    # The pickling failure is charged to the job immediately — no opaque
    # pool break — and the inline fallback (which never pickles) saves it.
    assert set(dispatch.outputs) == {"gzip"}
    assert dispatch.failures == {}
    assert counter_value("faults.pool_rebuild") == rebuilds
    assert counter_value("retry.error") == errors + 1
    assert counter_value("faults.fallback.success") == fallback + 1
    failed = [r for r in dispatch.records if r.outcome == "error"]
    assert len(failed) == 1
    assert failed[0].payload_bytes == 0  # never serialised, never shipped


def test_unpicklable_job_quarantine_names_pickling(monkeypatch):
    class LocalConfig(DBTConfig):
        pass

    # Break the fallback too (profiling reset runs before the study), so
    # the quarantine surfaces and its error names the real culprit.
    def _boom():
        raise RuntimeError("sampler exploded")

    monkeypatch.setattr("repro.obs.profile.reset_sampling", _boom)
    dispatch = _dispatch(["gzip"], retries=0, jobs=2, pool="process",
                         config=LocalConfig())
    assert dispatch.outputs == {}
    failure = dispatch.failures["gzip"]
    assert "failed to pickle" in failure.error
    assert "inline fallback also failed" in failure.error


# -- fault-token refunds (satellite: tokens lost to unrelated deaths) ---------


def test_unfired_token_refunded_when_attempt_dies_early(monkeypatch):
    # The attempt dies in job setup, *before* the drawn fault fires: the
    # token must go back to the plan, or the injection schedule would
    # silently lose a scheduled fault to an unrelated failure.
    def _boom():
        raise RuntimeError("sampler exploded")

    monkeypatch.setattr("repro.obs.profile.reset_sampling", _boom)
    plan = FaultPlan.from_spec("gzip:error:1")
    refunded = counter_value("faults.refunded")
    dispatch = _dispatch(["gzip"], plan=plan, retries=0, jobs=1)
    assert dispatch.failures["gzip"].reason == "error"
    assert "sampler exploded" in dispatch.failures["gzip"].error
    assert counter_value("faults.refunded") == refunded + 1
    # The schedule survives: the token is drawable again.
    assert plan.draw("gzip") == "error"


def test_fired_token_consumed_on_failure():
    # The injected fault itself caused the death: consumed, not refunded.
    plan = FaultPlan.from_spec("gzip:error:1")
    refunded = counter_value("faults.refunded")
    dispatch = _dispatch(["gzip"], plan=plan, retries=1, jobs=1)
    assert set(dispatch.outputs) == {"gzip"}  # retry succeeded
    assert counter_value("faults.refunded") == refunded
    assert plan.draw("gzip") is None  # budget spent
