"""StudyResults persistence and aggregation tests."""

import pytest

from repro.harness import (BenchmarkResult, PerfPoint, StudyResults,
                           average_scalar, average_series)


def _result(name="demo", suite="int"):
    return BenchmarkResult(
        name=name, suite=suite, thresholds=[10, 100],
        sd_bp={10: 0.2, 100: 0.1},
        bp_mismatch={10: 0.3, 100: None},
        sd_cp={10: None, 100: 0.05},
        sd_lp={10: 0.15, 100: 0.08},
        lp_mismatch={10: 0.5, 100: 0.0},
        train_sd_bp=0.12, train_bp_mismatch=0.09,
        train_sd_cp=0.07, train_sd_lp=0.11,
        profiling_ops={10: 100, 100: 900},
        train_ops=10_000, avep_ops=50_000,
        num_regions={10: 4, 100: 2},
        perf={1: PerfPoint(total=100.0, unoptimized=50, optimized=30,
                           side_exits=15, translation=5, num_side_exits=3,
                           optimized_fraction=0.9),
              10: PerfPoint(total=80.0, unoptimized=40, optimized=30,
                            side_exits=5, translation=5, num_side_exits=1,
                            optimized_fraction=0.8)})


def test_perf_relative():
    result = _result()
    rel = result.perf_relative()
    assert rel[1] == 1.0
    assert rel[10] == pytest.approx(1.25)
    with pytest.raises(KeyError):
        result.perf_relative(base_threshold=999)


def test_save_load_roundtrip(tmp_path):
    results = StudyResults()
    results.benchmarks["demo"] = _result()
    results.benchmarks["swim"] = _result(name="swim", suite="fp")
    path = str(tmp_path / "results.json")
    results.save(path)
    loaded = StudyResults.load(path)
    assert set(loaded.benchmarks) == {"demo", "swim"}
    restored = loaded.benchmarks["demo"]
    assert restored.sd_bp == {10: 0.2, 100: 0.1}
    assert restored.bp_mismatch[100] is None
    assert restored.perf[1].total == 100.0
    assert restored.perf_relative()[10] == pytest.approx(1.25)


def test_manifest_roundtrip(tmp_path):
    from repro.obs import build_manifest
    results = StudyResults()
    results.benchmarks["demo"] = _result()
    results.manifest = build_manifest(
        fingerprint="abc123", names=["demo"], thresholds=[10, 100],
        steps_scale=0.5, include_perf=True,
        timings={"demo": 1.25}, total_seconds=1.3)
    path = str(tmp_path / "results.json")
    results.save(path)
    loaded = StudyResults.load(path)
    assert loaded.manifest["fingerprint"] == "abc123"
    assert loaded.manifest["timings"] == {"demo": 1.25}
    assert loaded.manifest["steps_scale"] == 0.5
    assert "counters" in loaded.manifest["metrics"]


def test_missing_manifest_tolerated(tmp_path):
    results = StudyResults()
    results.benchmarks["demo"] = _result()
    path = str(tmp_path / "results.json")
    results.save(path)
    # Simulate a file written without a manifest key.
    import json
    with open(path) as f:
        payload = json.load(f)
    del payload["manifest"]
    with open(path, "w") as f:
        json.dump(payload, f)
    assert StudyResults.load(path).manifest is None


def test_render_manifest_smoke():
    from repro.obs import build_manifest, render_manifest
    text = render_manifest(build_manifest(
        fingerprint="abc123", names=["gzip"], thresholds=[10],
        timings={"gzip": 2.0}, total_seconds=2.0))
    assert "abc123" in text
    assert "gzip" in text
    assert "none recorded" in render_manifest(None)


def test_stale_format_rejected(tmp_path):
    import json
    path = str(tmp_path / "stale.json")
    with open(path, "w") as f:
        json.dump({"version": -1, "benchmarks": {}}, f)
    with pytest.raises(ValueError, match="stale"):
        StudyResults.load(path)


def test_suite_filters():
    results = StudyResults()
    results.benchmarks["a"] = _result("a", "int")
    results.benchmarks["b"] = _result("b", "fp")
    assert results.names() == ["a", "b"]
    assert results.names("fp") == ["b"]
    assert [r.name for r in results.of_suite("int")] == ["a"]


def test_average_series_skips_none():
    a = _result("a")
    b = _result("b")
    b.bp_mismatch = {10: 0.1, 100: 0.2}
    avg = average_series([a, b], "bp_mismatch", [10, 100])
    assert avg[10] == pytest.approx(0.2)
    assert avg[100] == pytest.approx(0.2)  # only b has a value


def test_average_scalar():
    a = _result("a")
    b = _result("b")
    b.train_sd_bp = None
    assert average_scalar([a, b], "train_sd_bp") == pytest.approx(0.12)
    a.train_sd_bp = None
    assert average_scalar([a, b], "train_sd_bp") is None
