"""Runner tests: per-benchmark study at reduced scale, plus caching.

These are the heaviest tests in the suite; scale is kept small via
``steps_scale``.
"""

import pytest

from repro.dbt import DBTConfig
from repro.harness import run_full_study, study_benchmark
from repro.workloads import get_benchmark

THRESHOLDS = [5, 50, 500]


@pytest.fixture(scope="module")
def swim_result():
    return study_benchmark(get_benchmark("swim"), THRESHOLDS,
                           config=DBTConfig(pool_trigger_size=4),
                           steps_scale=0.02)


def test_result_structure(swim_result):
    assert swim_result.name == "swim"
    assert swim_result.suite == "fp"
    assert swim_result.thresholds == THRESHOLDS
    for t in THRESHOLDS:
        assert t in swim_result.sd_bp
        assert t in swim_result.profiling_ops
        assert t in swim_result.num_regions
    assert swim_result.train_ops > 0
    assert swim_result.avep_ops > 0


def test_perf_points_include_base(swim_result):
    assert 1 in swim_result.perf
    for t in THRESHOLDS:
        assert t in swim_result.perf
    rel = swim_result.perf_relative()
    assert rel[1] == 1.0
    assert all(v > 0 for v in rel.values())


def test_ops_increase_with_threshold(swim_result):
    ops = [swim_result.profiling_ops[t] for t in THRESHOLDS]
    assert ops == sorted(ops)
    assert all(o <= swim_result.avep_ops for o in ops)


def test_perf_can_be_skipped():
    result = study_benchmark(get_benchmark("art"), [50],
                             steps_scale=0.02, include_perf=False)
    assert result.perf == {}
    assert result.sd_bp[50] is not None


def test_full_study_without_cache():
    results = run_full_study(names=["swim", "gzip"], thresholds=[50],
                             steps_scale=0.02, include_perf=False,
                             cache_dir=None)
    assert set(results.benchmarks) == {"swim", "gzip"}
    assert results.benchmarks["gzip"].suite == "int"


def test_full_study_uses_cache(tmp_path):
    cache_dir = str(tmp_path / "cache")
    kwargs = dict(names=["art"], thresholds=[50], steps_scale=0.02,
                  include_perf=False, cache_dir=cache_dir)
    first = run_full_study(**kwargs)
    second = run_full_study(**kwargs)  # served from disk
    assert first.benchmarks["art"].sd_bp == \
        second.benchmarks["art"].sd_bp
    import os
    assert any(name.startswith("study-")
               for name in os.listdir(cache_dir))


def test_cache_key_distinguishes_configs(tmp_path):
    cache_dir = str(tmp_path / "cache")
    run_full_study(names=["art"], thresholds=[50], steps_scale=0.02,
                   include_perf=False, cache_dir=cache_dir)
    run_full_study(names=["art"], thresholds=[500], steps_scale=0.02,
                   include_perf=False, cache_dir=cache_dir)
    import os
    files = os.listdir(cache_dir)
    # Each config gets its own aggregate and its own per-benchmark shard.
    assert len([f for f in files if f.startswith("study-")]) == 2
    assert len([f for f in files if f.startswith("shard-art-")]) == 2


def test_steps_scale_does_not_mutate_benchmark():
    benchmark = get_benchmark("art")
    run_steps, train_steps = benchmark.run_steps, benchmark.train_steps
    study_benchmark(benchmark, [50], steps_scale=0.02, include_perf=False)
    assert benchmark.run_steps == run_steps
    assert benchmark.train_steps == train_steps
    # Repeating with another scale must not compound either.
    study_benchmark(benchmark, [50], steps_scale=0.5, include_perf=False)
    assert benchmark.run_steps == run_steps


def test_scaled_copy_floors_and_identity():
    benchmark = get_benchmark("art")
    assert benchmark.scaled(1.0) is benchmark
    tiny = benchmark.scaled(1e-9)
    assert tiny.run_steps == 20_000
    assert tiny.train_steps == 10_000
    assert tiny.name == benchmark.name


def test_stale_cache_is_warned_and_counted(tmp_path):
    import io
    import os

    from repro.dbt import DBTConfig
    from repro.harness.runner import _fingerprint
    from repro.obs import configure, counter_value
    from repro.obs import log as obslog
    from repro.perfmodel import DEFAULT_COSTS

    cache_dir = str(tmp_path / "cache")
    os.makedirs(cache_dir)
    key = _fingerprint(["art"], [50], DBTConfig(), DEFAULT_COSTS, 0.02,
                       False)
    cache_path = os.path.join(cache_dir, f"study-{key}.json")
    with open(cache_path, "w") as f:
        f.write("{ not json")

    saved = (obslog._CONFIG.level, obslog._CONFIG.json_mode,
             obslog._CONFIG.stream, obslog._CONFIG.configured)
    stream = io.StringIO()
    configure(level="warning", stream=stream)
    stale_before = counter_value("cache.stale")
    miss_before = counter_value("cache.miss")
    try:
        results = run_full_study(names=["art"], thresholds=[50],
                                 steps_scale=0.02, include_perf=False,
                                 cache_dir=cache_dir)
    finally:
        (obslog._CONFIG.level, obslog._CONFIG.json_mode,
         obslog._CONFIG.stream, obslog._CONFIG.configured) = saved
    assert "art" in results.benchmarks  # recomputed despite bad cache
    assert counter_value("cache.stale") == stale_before + 1
    assert counter_value("cache.miss") == miss_before + 1
    logged = stream.getvalue()
    assert "stale results cache" in logged
    assert cache_path in logged


def test_manifest_attached_and_cached(tmp_path):
    cache_dir = str(tmp_path / "cache")
    kwargs = dict(names=["art"], thresholds=[50], steps_scale=0.02,
                  include_perf=False, cache_dir=cache_dir)
    first = run_full_study(**kwargs)
    assert first.manifest is not None
    assert first.manifest["benchmarks"] == ["art"]
    assert "art" in first.manifest["timings"]
    assert first.manifest["metrics"]["counters"]
    second = run_full_study(**kwargs)  # from disk, manifest included
    assert second.manifest["fingerprint"] == first.manifest["fingerprint"]


def test_replay_metrics_counted():
    from repro.obs import counter_value
    translated = counter_value("replay.blocks_translated")
    misses = counter_value("cache.miss")
    run_full_study(names=["art"], thresholds=[50], steps_scale=0.02,
                   include_perf=False, cache_dir=None)
    assert counter_value("replay.blocks_translated") > translated
    # cache_dir=None must not touch the cache counters.
    assert counter_value("cache.miss") == misses
