"""Table-rendering tests."""

import pytest

from repro.harness import Table, render, render_all


def _table():
    table = Table(title="Demo", columns=["threshold", "value"])
    table.add_row("100", 0.123456)
    table.add_row("1k", None)
    table.add_row("4M", 2)
    table.notes.append("a note")
    return table


def test_render_contains_everything():
    text = render(_table())
    assert "Demo" in text
    assert "threshold" in text and "value" in text
    assert "0.123" in text
    assert " - " in text or text.rstrip().endswith("-") or "-\n" in text
    assert "note: a note" in text


def test_rows_must_match_columns():
    table = Table(title="t", columns=["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only-one")


def test_column_extraction():
    table = _table()
    assert table.column("value") == [0.123456, None, 2]
    with pytest.raises(ValueError):
        table.column("nope")


def test_alignment_is_consistent():
    text = render(_table())
    lines = text.splitlines()
    header = lines[2]
    data = lines[4]
    assert len(header) == len(data)


def test_render_all_joins_tables():
    text = render_all([_table(), _table()])
    assert text.count("Demo") == 2


def test_to_csv():
    from repro.harness import to_csv
    table = _table()
    csv_text = to_csv(table)
    lines = csv_text.strip().splitlines()
    assert lines[0] == "threshold,value"
    assert lines[1] == "100,0.123456"
    assert lines[2] == "1k,"          # None -> empty cell
    assert lines[3] == "4M,2"
