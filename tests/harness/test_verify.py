"""Harness integration of the semantic verifier: env/flag resolution,
cache-fingerprint isolation, per-study wiring, shard round-trips."""

import pytest

from repro.dbt import DBTConfig
from repro.harness.results import BenchmarkResult, _result_from_dict, \
    _result_to_dict
from repro.harness.runner import (DEFAULT_COSTS, VERIFY_ENV,
                                  _config_fingerprint, _key_payload,
                                  resolve_verify, study_benchmark)
from repro.workloads import get_benchmark


class TestResolveVerify:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(VERIFY_ENV, raising=False)
        assert resolve_verify() is False

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(VERIFY_ENV, "1")
        assert resolve_verify(False) is False
        monkeypatch.setenv(VERIFY_ENV, "0")
        assert resolve_verify(True) is True

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "TRUE"])
    def test_truthy_env(self, monkeypatch, value):
        monkeypatch.setenv(VERIFY_ENV, value)
        assert resolve_verify() is True

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off"])
    def test_falsy_env(self, monkeypatch, value):
        monkeypatch.setenv(VERIFY_ENV, value)
        assert resolve_verify() is False

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv(VERIFY_ENV, "maybe")
        with pytest.raises(ValueError):
            resolve_verify()


class TestCacheIsolation:
    def test_verified_runs_get_their_own_fingerprint(self):
        config = DBTConfig()
        plain = _config_fingerprint([10], config, DEFAULT_COSTS, 1.0, True)
        verified = _config_fingerprint([10], config, DEFAULT_COSTS, 1.0,
                                       True, verify=True)
        assert plain != verified

    def test_unverified_payload_is_unchanged(self):
        # pre-verifier caches must stay valid: verify=False adds no key
        config = DBTConfig()
        payload = _key_payload([10], config, DEFAULT_COSTS, 1.0, True)
        assert "verify" not in payload
        assert _key_payload([10], config, DEFAULT_COSTS, 1.0, True,
                            verify=True)["verify"] is True


class TestStudyBenchmarkVerify:
    @pytest.fixture(scope="class")
    def verified_result(self):
        bench = get_benchmark("gzip")
        return study_benchmark(bench, [10, 50], steps_scale=0.05,
                               include_perf=False, verify=True)

    def test_stock_suite_verifies_clean(self, verified_result):
        assert verified_result.verify_findings == []

    def test_unverified_run_has_no_findings_field_content(self):
        bench = get_benchmark("gzip")
        result = study_benchmark(bench, [10], steps_scale=0.05,
                                 include_perf=False, verify=False)
        assert result.verify_findings == []

    def test_verify_bumps_analysis_counters(self):
        from repro.obs import counter_value
        before = counter_value("analysis.checks")
        bench = get_benchmark("gzip")
        study_benchmark(bench, [10], steps_scale=0.05,
                        include_perf=False, verify=True)
        assert counter_value("analysis.checks") > before


def _blank_result():
    return BenchmarkResult(
        name="gzip", suite="INT", thresholds=[10],
        sd_bp={10: 0.1}, bp_mismatch={10: 0.0}, sd_cp={10: None},
        sd_lp={10: None}, lp_mismatch={10: None},
        train_sd_bp=0.2, train_bp_mismatch=0.1,
        train_sd_cp=None, train_sd_lp=None,
        profiling_ops={10: 100}, train_ops=50, avep_ops=500)


class TestShardRoundTrip:
    def test_verify_findings_survive_serialization(self):
        result = _blank_result()
        result.verify_findings = [
            "error: [counter.negative] INIP(10) block 3: use=-1"]
        restored = _result_from_dict(_result_to_dict(result))
        assert restored.verify_findings == result.verify_findings

    def test_legacy_payload_defaults_to_empty(self):
        data = _result_to_dict(_blank_result())
        del data["verify_findings"]  # a pre-verifier shard
        assert _result_from_dict(data).verify_findings == []


class TestReportVerify:
    """The CLI's verify reporter: stderr lines, summary, exit code 4."""

    @staticmethod
    def _results(**benchmarks):
        from types import SimpleNamespace
        return SimpleNamespace(benchmarks=benchmarks)

    def test_clean_results_exit_zero(self, capsys):
        from repro.harness.cli import _report_verify
        result = _blank_result()
        assert _report_verify(self._results(gzip=result)) == 0
        assert capsys.readouterr().err == ""

    def test_error_findings_exit_four(self, capsys):
        from repro.harness.cli import EXIT_VERIFY, _report_verify
        result = _blank_result()
        result.verify_findings = [
            "error: [counter.negative] INIP(10) block 3: use=-1",
            "warning: [counter.zero-use-entry] INIP(10) block 5: never ran"]
        assert _report_verify(self._results(gzip=result)) == EXIT_VERIFY
        err = capsys.readouterr().err
        assert "verify: gzip: error: [counter.negative]" in err
        assert "1 error(s)" in err and "1 warning(s)" in err

    def test_warnings_alone_exit_zero(self, capsys):
        from repro.harness.cli import _report_verify
        result = _blank_result()
        result.verify_findings = [
            "warning: [navep.conservation-drift] block 2: 12% drift"]
        assert _report_verify(self._results(gzip=result)) == 0
        assert "verify: gzip: warning:" in capsys.readouterr().err
