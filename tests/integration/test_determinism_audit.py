"""Determinism audit: no code path draws from ambient global RNG state.

Every stochastic draw in the pipeline must flow through an explicitly
seeded generator (``random.Random(seed)`` or a transplanted
``numpy.random.RandomState``).  A single draw from the module-level
``random`` functions or the global numpy generator would make runs
irreproducible and break the byte-identity guarantees the golden corpus
pins — so these tests boobytrap every global entry point and then drive
the public API across both kernels.
"""

import random

import numpy as np
import pytest

from repro.harness import run_full_study
from repro.stochastic import record_trace
from repro.workloads import get_benchmark

#: Module-level functions of :mod:`random` that draw from the hidden
#: shared ``Random`` instance.
_PY_GLOBALS = ("random", "uniform", "randint", "randrange", "choice",
               "choices", "shuffle", "sample", "gauss", "normalvariate",
               "expovariate", "betavariate", "seed", "getrandbits")

#: Module-level numpy draws backed by the global ``mtrand`` state.
_NP_GLOBALS = ("random", "random_sample", "rand", "randn", "randint",
               "uniform", "choice", "shuffle", "permutation", "normal",
               "standard_normal", "seed", "default_rng")


@pytest.fixture
def trapped_global_rng(monkeypatch):
    """Make every global RNG entry point raise on use."""
    def trap(label):
        def _boom(*args, **kwargs):
            raise AssertionError(f"pipeline drew from global RNG: {label}")
        return _boom

    for name in _PY_GLOBALS:
        monkeypatch.setattr(random, name, trap(f"random.{name}"))
    for name in _NP_GLOBALS:
        if hasattr(np.random, name):
            monkeypatch.setattr(np.random, name,
                                trap(f"numpy.random.{name}"))

    # random.Random() with no seed is just as ambient as random.random()
    # — allow only explicitly seeded construction.  (VecWalker's
    # RandomState() is exempt: it is state-transplanted before any draw.)
    real_random = random.Random

    def seeded_only(*args, **kwargs):
        if not args and not kwargs:
            raise AssertionError("unseeded random.Random() constructed")
        return real_random(*args, **kwargs)

    monkeypatch.setattr(random, "Random", seeded_only)


def test_trap_actually_fires(trapped_global_rng):
    with pytest.raises(AssertionError, match="global RNG"):
        random.random()
    with pytest.raises(AssertionError, match="global RNG"):
        np.random.random_sample(3)
    with pytest.raises(AssertionError, match="unseeded"):
        random.Random()


@pytest.mark.parametrize("kernel", ["scalar", "vector"])
def test_trace_recording_is_rng_hermetic(trapped_global_rng, kernel):
    benchmark = get_benchmark("gzip").scaled(0.05)
    trace = benchmark.trace("ref", kernel=kernel)
    trace.events()  # index construction must be draw-free too
    assert trace.num_steps > 0


@pytest.mark.parametrize("kernel", ["scalar", "vector"])
def test_full_pipeline_is_rng_hermetic(trapped_global_rng, kernel):
    """Trace + replay sweep + figures prep, all under the trap."""
    results = run_full_study(names=["gzip"], thresholds=[5, 50],
                             steps_scale=0.02, include_perf=True,
                             cache_dir=None, jobs=1, kernel=kernel)
    assert "gzip" in results.benchmarks


@pytest.mark.parametrize("kernel", ["scalar", "vector"])
def test_repeat_runs_are_bit_identical(kernel):
    """Same seed, same kernel, fresh processes of state: identical bytes."""
    benchmark = get_benchmark("mcf").scaled(0.05)
    first = benchmark.trace("ref", kernel=kernel)
    second = benchmark.trace("ref", kernel=kernel)
    np.testing.assert_array_equal(first.blocks, second.blocks)
    np.testing.assert_array_equal(first.taken, second.taken)


def test_behavior_realization_is_deterministic():
    """Workload character realisation (the other stochastic input) is
    seed-stable: two realisations describe identical behaviours."""
    a = get_benchmark("twolf").behaviors()
    b = get_benchmark("twolf").behaviors()
    assert a == b
