"""End-to-end integration: VIR program → interpreter → live DBT →
profiles → the paper's metrics; and the workload path through the runner.
"""

import pytest

from repro.cfg import cfg_from_program
from repro.core import compare_inip_to_avep
from repro.dbt import DBTConfig, TwoPhaseDBT
from repro.interp import Interpreter, TeeListener
from repro.ir import Cond, ProgramBuilder
from repro.profiles import avep_from_trace
from repro.stochastic import TraceRecorder


def _counting_program(outer, inner):
    """Nested counted loops: data-dependent branches, fully deterministic."""
    pb = ProgramBuilder()
    with pb.function("main") as fb:
        (fb.block("entry")
           .li("i", 0).li("acc", 0).li("one", 1)
           .li("outer_n", outer).li("inner_n", inner)
           .jmp("outer_head"))
        (fb.block("outer_head")
           .li("j", 0)
           .jmp("inner_head"))
        (fb.block("inner_head")
           .add("acc", "acc", "one")
           .add("j", "j", "one")
           .br(Cond.LT, "j", "inner_n", taken="inner_head",
               fall="outer_latch"))
        (fb.block("outer_latch")
           .add("i", "i", "one")
           .br(Cond.LT, "i", "outer_n", taken="outer_head", fall="done"))
        fb.block("done").halt()
    return pb.build()


def test_interpreter_drives_live_dbt_and_metrics():
    program = _counting_program(outer=60, inner=40)
    cfg, ids = cfg_from_program(program)

    recorder = TraceRecorder(program.num_blocks())
    dbt = TwoPhaseDBT(cfg, DBTConfig(threshold=50, pool_trigger_size=2))
    interp = Interpreter(program, listener=TeeListener(recorder, dbt),
                         step_limit=10**8)
    interp.run()

    inip = dbt.snapshot()
    avep = avep_from_trace(recorder.trace())

    # the inner loop got optimised into a loop region
    inner_id = interp.block_id("main", "inner_head")
    assert inner_id in inip.optimized_blocks()
    loop_regions = inip.loop_regions()
    assert any(r.entry_block == inner_id for r in loop_regions)

    result = compare_inip_to_avep(cfg, inip, avep)
    # deterministic counted loops: the initial profile is near perfect
    # (the only deviation is the truncated sampling of the loop exits)
    assert result.sd_bp is not None
    assert result.sd_bp < 0.05
    assert result.bp_mismatch == 0.0
    assert result.sd_lp is not None


def test_interpreter_counts_are_exact():
    program = _counting_program(outer=10, inner=7)
    cfg, _ = cfg_from_program(program)
    recorder = TraceRecorder(program.num_blocks())
    interp = Interpreter(program, listener=recorder)
    interp.run()
    trace = recorder.trace()
    avep = avep_from_trace(trace)

    inner_id = interp.block_id("main", "inner_head")
    outer_id = interp.block_id("main", "outer_latch")
    assert avep.blocks[inner_id].use == 70
    assert avep.blocks[inner_id].taken == 60   # 6 taken per 7 trips
    assert avep.blocks[outer_id].use == 10
    assert avep.blocks[outer_id].taken == 9

    # LP of the inner loop from AVEP = (trips-1)/trips
    assert avep.branch_probability(inner_id) == pytest.approx(6 / 7)


def test_workload_pipeline_matches_interpreter_protocol():
    """A suite benchmark processed by the live DBT (via replay_trace)
    equals the ReplayDBT result — cross-checking engines end to end."""
    from repro.dbt import ReplayDBT
    from repro.profiles import snapshot_to_dict
    from repro.stochastic import replay_trace
    from repro.workloads import get_benchmark

    bench = get_benchmark("eon")
    bench.run_steps = 30_000
    trace = bench.trace("ref")
    config = DBTConfig(threshold=25, pool_trigger_size=4)

    live = TwoPhaseDBT(bench.cfg, config)
    replay_trace(trace, live)
    fast = ReplayDBT(trace, bench.cfg, config)
    assert snapshot_to_dict(live.snapshot()) == \
        snapshot_to_dict(fast.snapshot())
