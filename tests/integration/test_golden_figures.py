"""Golden-corpus wall: study outputs are pinned, byte for byte.

Three layers of protection for the figure data the paper comparison
rests on:

1. **Corpus digests** — the committed ``results/fig*.txt`` and
   ``results/ablation_*.txt`` renderings are pinned by SHA-256.  Any
   change to the study pipeline that alters a single byte of a rendered
   figure shows up here as a digest mismatch, forcing a deliberate
   regeneration (see EXPERIMENTS.md, "Regenerating the golden corpus")
   instead of silent drift.
2. **Reduced-study matrix** — a small study is recomputed under every
   combination of event kernel (scalar/vector), job count (1/2) and
   verification mode, and every cell must serialise to identical bytes.
   This is the fast, always-on version of the full-corpus guarantee.
3. **Full-scale gate** — with ``REPRO_GOLDEN_FULL=1`` the entire
   full-scale study is regenerated under both kernels and its rendered
   figures compared byte-for-byte against the committed corpus.  Slow
   (minutes); run before regenerating the corpus or cutting a release.
"""

import hashlib
import json
import os

import pytest

from repro.harness import run_full_study
from repro.harness.figures import FIGURES
from repro.harness.results import _result_to_dict
from repro.harness.tables import render

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "..", "..", "results")

#: SHA-256 of every committed golden rendering.  Regenerate with
#: ``sha256sum results/*.txt`` after an intentional pipeline change
#: (EXPERIMENTS.md documents the full procedure).
GOLDEN_DIGESTS = {
    "ablation_phase.txt":
        "6f9a8f4dfe8dc492e728b9dc57d08fe770b00de4c72f4b3c6d5129c510aebc75",
    "ablation_pool.txt":
        "68a8856a827b458e4a1be050b874322c4335d539eca127a1a23a1e1a2ff807af",
    "ablation_regions.txt":
        "800608d0176d4f969f9033133f1f7ea17104b37152b7a1140be37906f3e5aca9",
    "ablation_static.txt":
        "ef43f7e4922cbc473ac376fea7305cc6e1bbe7bd9ca6f8aef782a81f52b49a0b",
    "fig08_sd_bp.txt":
        "2d97e7766c6e6b3abaa0e305a4da77a445ea3a5fb9849d2b52477ec7b986a116",
    "fig09_sd_bp_int.txt":
        "c4741b3846452b1155d84318b624f4d223dbb709e9f9bdae3c574b3e70c1342c",
    "fig10_bp_mismatch.txt":
        "718925c7aaff315cc259699af91287bac53c3ac323df1cf031eae67ce1143499",
    "fig11_bp_mismatch_int.txt":
        "c331391da50feedcc5b2989afcef4080cb558a9e8e3ec08f9f905caf07f699e3",
    "fig12_bp_mismatch_fp.txt":
        "84b45f71a5e1926a4abe8ba5d08df801460e6cded3e31804eaa4f7bd9f92c7f6",
    "fig13_sd_cp.txt":
        "8553270573fee849f83c14d7e952acdd681b969648c67ddb725aba29fad52e08",
    "fig14_sd_lp.txt":
        "70317e3ee813127f1485cdd9e83a4622932bc024e7fb7543eaf3a4f587cdd3f1",
    "fig15_lp_mismatch.txt":
        "61da14737767310c7a211e37d1dab8724aa04309d09874d2da86b41bc0b8da81",
    "fig16_lp_mismatch_int.txt":
        "fa2235e9d0c77deae8ef6d15733389ba1236b73a6ffa98a88b02f55f5c8cf323",
    "fig17_performance.txt":
        "d9e19355e933ed9a4a9275c7e162943af39d5afc72757e66f4c4d2a7cdf2949a",
    "fig18_overhead.txt":
        "8a3b68d67316a4d9ddf3276d989de9cfca4435ee6c9cf80cccf90837305e5471",
}

REDUCED = dict(names=["gzip", "mcf", "art"], thresholds=[5, 50, 500],
               steps_scale=0.05, include_perf=True, cache_dir=None)


def _digest(path):
    with open(path, "rb") as f:
        return hashlib.sha256(f.read()).hexdigest()


def _figure_bytes(results):
    """Canonical serialisation of the figure-facing data (no manifest —
    it carries timings/hostnames that legitimately differ per run)."""
    payload = {name: _result_to_dict(r)
               for name, r in results.benchmarks.items()}
    return json.dumps(payload, sort_keys=True).encode()


@pytest.mark.parametrize("name", sorted(GOLDEN_DIGESTS))
def test_golden_corpus_digest(name):
    path = os.path.join(RESULTS_DIR, name)
    assert os.path.exists(path), f"golden rendering {name} missing"
    assert _digest(path) == GOLDEN_DIGESTS[name], (
        f"{name} drifted from its pinned digest — if the change is "
        f"intentional, regenerate the corpus per EXPERIMENTS.md and "
        f"update GOLDEN_DIGESTS")


def test_reduced_study_matrix_byte_identical():
    """kernel x replay kernel x dispatch mode x verify: identical bytes."""
    modes = [dict(jobs=1),                            # inprocess backend
             dict(jobs=2),                            # process backend
             dict(jobs=2, pool="batched", batch=2)]   # batched backend
    baseline = None
    for kernel in ("scalar", "vector"):
        for replay_kernel in ("scalar", "batched"):
            for mode in modes:
                # Verification is dispatch- and kernel-blind; sweeping
                # it across every pool backend and replay kernel would
                # slow the wall without adding coverage.
                verifies = ((False, True)
                            if "pool" not in mode
                            and replay_kernel == "batched"
                            else (False,))
                for verify in verifies:
                    results = run_full_study(kernel=kernel,
                                             replay_kernel=replay_kernel,
                                             verify=verify,
                                             **mode, **REDUCED)
                    got = _figure_bytes(results)
                    label = (f"kernel={kernel} replay={replay_kernel} "
                             f"mode={mode} verify={verify}")
                    if baseline is None:
                        baseline = got
                    else:
                        assert got == baseline, f"{label} diverged"
                    assert results.manifest["kernel"] == kernel, label
                    assert results.manifest["replay_kernel"] == \
                        replay_kernel, label
                    if "pool" in mode:
                        assert results.manifest["pool"] == \
                            mode["pool"], label
                        assert results.manifest["batch_size"] == \
                            mode["batch"], label


def test_reduced_figures_render_identically_across_kernels():
    """Rendered figure text (what results/*.txt holds) is kernel-blind,
    on both the recording and the replay axis."""
    scalar = run_full_study(jobs=1, kernel="scalar",
                            replay_kernel="scalar", **REDUCED)
    vector = run_full_study(jobs=1, kernel="vector",
                            replay_kernel="batched", **REDUCED)
    for fignum, builder in sorted(FIGURES.items()):
        assert render(builder(scalar)) == render(builder(vector)), \
            f"figure {fignum} renders differently under the two kernels"


@pytest.mark.skipif(not os.environ.get("REPRO_GOLDEN_FULL"),
                    reason="full-scale regeneration; set REPRO_GOLDEN_FULL=1")
def test_full_corpus_regenerates_identically():
    """The committed corpus is reproducible from scratch, either kernel."""
    scalar = run_full_study(include_perf=True, cache_dir=None,
                            kernel="scalar", replay_kernel="scalar")
    vector = run_full_study(include_perf=True, cache_dir=None,
                            kernel="vector", replay_kernel="batched")
    assert _figure_bytes(scalar) == _figure_bytes(vector)
    for fignum, builder in sorted(FIGURES.items()):
        name = f"{builder.__name__}.txt"
        path = os.path.join(RESULTS_DIR, name)
        if not os.path.exists(path):
            continue
        with open(path) as f:
            committed = f.read()
        assert render(builder(vector)) + "\n" == committed, \
            f"figure {fignum} no longer matches the committed corpus"
