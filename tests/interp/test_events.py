"""Listener utility tests."""

from repro.interp import NullListener, RecordingListener, TeeListener


def test_null_listener_ignores_everything():
    listener = NullListener()
    listener.on_block(1)
    listener.on_branch(1, True)  # no exception, no state


def test_recording_listener_accumulates():
    listener = RecordingListener()
    listener.on_block(3)
    listener.on_branch(3, True)
    listener.on_block(4)
    listener.on_branch(4, False)
    assert listener.blocks == [3, 4]
    assert listener.branches == [(3, True), (4, False)]


def test_tee_fans_out_in_order():
    first = RecordingListener()
    second = RecordingListener()
    tee = TeeListener(first, second)
    tee.on_block(9)
    tee.on_branch(9, True)
    assert first.blocks == second.blocks == [9]
    assert first.branches == second.branches == [(9, True)]
