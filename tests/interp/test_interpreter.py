"""Interpreter semantics tests: arithmetic, control flow, faults, events."""

import pytest

from repro.interp import Interpreter, RecordingListener, run_program
from repro.ir import Cond, ExecutionError, Opcode, ProgramBuilder, \
    parse_program


def _run(source, **kwargs):
    program = parse_program(source)
    interp = Interpreter(program, **kwargs)
    result = interp.run()
    return interp, result


class TestArithmetic:
    def test_integer_ops(self):
        interp, _ = _run("""
func main:
 b:
  li a, 7
  li b, 3
  add s, a, b
  sub d, a, b
  mul m, a, b
  div q, a, b
  mod r, a, b
  halt
""")
        state = interp.state
        assert state.read("s") == 10
        assert state.read("d") == 4
        assert state.read("m") == 21
        assert state.read("q") == 2
        assert state.read("r") == 1

    def test_bitwise_ops(self):
        interp, _ = _run("""
func main:
 b:
  li a, 12
  li b, 10
  and x, a, b
  or y, a, b
  xor z, a, b
  li one, 1
  shl l, a, one
  shr r, a, one
  halt
""")
        state = interp.state
        assert state.read("x") == 8
        assert state.read("y") == 14
        assert state.read("z") == 6
        assert state.read("l") == 24
        assert state.read("r") == 6

    def test_float_ops(self):
        interp, _ = _run("""
func main:
 b:
  li a, 1.5
  li b, 0.5
  fadd s, a, b
  fsub d, a, b
  fmul m, a, b
  fdiv q, a, b
  halt
""")
        state = interp.state
        assert state.read("s") == 2.0
        assert state.read("d") == 1.0
        assert state.read("m") == 0.75
        assert state.read("q") == 3.0

    def test_neg_and_mov(self):
        interp, _ = _run(
            "func main:\n b:\n  li a, 5\n  neg n, a\n  mov c, n\n  halt\n")
        assert interp.state.read("n") == -5
        assert interp.state.read("c") == -5

    def test_division_by_zero_faults(self):
        with pytest.raises(ExecutionError, match="division by zero"):
            _run("func main:\n b:\n  li a, 1\n  div q, a, zero\n  halt\n")

    def test_float_division_by_zero_faults(self):
        with pytest.raises(ExecutionError, match="division by zero"):
            _run("func main:\n b:\n  li a, 1.0\n  fdiv q, a, zero\n  halt\n")


class TestControlFlow:
    def test_loop_computes_sum(self, loop_program):
        interp = Interpreter(loop_program)
        result = interp.run()
        assert interp.state.read("acc") == 5 + 4 + 3 + 2 + 1
        assert result.halted

    def test_call_and_return(self):
        interp, result = _run("""
func main:
 entry:
  li x, 1
  call double
  call double
  halt

func double:
 entry:
  add x, x, x
  ret
""")
        assert interp.state.read("x") == 4
        assert result.halted

    def test_return_from_entry_ends_run(self):
        _, result = _run("func main:\n b:\n  ret\n")
        assert not result.halted
        assert result.blocks_executed == 1

    def test_memory_instructions(self):
        interp, _ = _run("""
func main:
 b:
  li base, 100
  li v, 7
  store v, base, 5
  load out, base, 5
  halt
""")
        assert interp.state.read("out") == 7

    def test_step_limit_stops_infinite_loop(self):
        with pytest.raises(ExecutionError, match="step limit"):
            _run("func main:\n b:\n  jmp b\n", step_limit=1000)

    def test_recursion_overflows_call_stack(self):
        source = "func main:\n b:\n  call main\n  halt\n"
        program = parse_program(source)
        with pytest.raises(ExecutionError, match="call stack"):
            Interpreter(program).run()


class TestEvents:
    def test_block_and_branch_events(self, loop_program):
        recorder = RecordingListener()
        interp = Interpreter(loop_program, listener=recorder)
        interp.run()
        loop_id = interp.block_id("main", "loop")
        # 5 loop iterations: 4 taken + 1 not taken.
        branch_outcomes = [t for b, t in recorder.branches if b == loop_id]
        assert branch_outcomes == [True] * 4 + [False]
        # blocks: entry, loop x5, done
        assert recorder.blocks[0] == interp.block_id("main", "entry")
        assert recorder.blocks.count(loop_id) == 5

    def test_blocks_executed_matches_events(self, loop_program):
        recorder = RecordingListener()
        result = Interpreter(loop_program, listener=recorder).run()
        assert result.blocks_executed == len(recorder.blocks)

    def test_run_program_wrapper(self, loop_program):
        result = run_program(loop_program)
        assert result.halted
