"""Unit tests for the machine state."""

import pytest

from repro.interp import Frame, MachineState
from repro.ir import ExecutionError


def test_registers_default_to_zero():
    state = MachineState()
    assert state.read("never_written") == 0


def test_register_write_read():
    state = MachineState()
    state.write("r0", 42)
    assert state.read("r0") == 42
    state.write("r0", -1.5)
    assert state.read("r0") == -1.5


def test_memory_roundtrip():
    state = MachineState(memory_words=16)
    state.store(3, 99)
    assert state.load(3) == 99
    assert state.load(4) == 0


@pytest.mark.parametrize("address", [-1, 16, 1000])
def test_memory_bounds_checked(address):
    state = MachineState(memory_words=16)
    with pytest.raises(ExecutionError):
        state.load(address)
    with pytest.raises(ExecutionError):
        state.store(address, 1)


def test_non_integer_address_rejected():
    state = MachineState()
    with pytest.raises(ExecutionError):
        state.load(1.5)  # type: ignore[arg-type]


def test_call_stack_depth_limit():
    state = MachineState(max_call_depth=2)
    state.push_frame(Frame("f", "b", 0))
    state.push_frame(Frame("f", "b", 0))
    with pytest.raises(ExecutionError, match="call stack"):
        state.push_frame(Frame("f", "b", 0))


def test_pop_empty_stack_returns_none():
    assert MachineState().pop_frame() is None


def test_frames_pop_in_lifo_order():
    state = MachineState()
    state.push_frame(Frame("f", "a", 1))
    state.push_frame(Frame("g", "b", 2))
    assert state.pop_frame().function == "g"
    assert state.pop_frame().function == "f"
