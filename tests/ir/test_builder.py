"""Unit tests for the fluent program builder."""

import pytest

from repro.ir import BuildError, Cond, Opcode, ProgramBuilder


def test_quickstart_shape():
    pb = ProgramBuilder()
    with pb.function("main") as fb:
        fb.block("entry").li("r0", 0).jmp("loop")
        (fb.block("loop").add("r0", "r0", "r1")
           .br(Cond.GT, "r1", "r0", taken="loop", fall="done"))
        fb.block("done").halt()
    program = pb.build()
    assert program.num_blocks() == 3
    assert program.entry_function.entry == "entry"


def test_emit_after_terminator_rejected():
    pb = ProgramBuilder()
    fb = pb.function("main")
    bb = fb.block("b").halt()
    with pytest.raises(BuildError):
        bb.nop()


def test_unsealed_block_rejected_at_finish():
    pb = ProgramBuilder()
    fb = pb.function("main")
    fb.block("b").li("r0", 1)  # never sealed
    with pytest.raises(BuildError):
        pb.build()


def test_context_manager_checks_on_clean_exit_only():
    pb = ProgramBuilder()
    with pytest.raises(BuildError):
        with pb.function("main") as fb:
            fb.block("b").nop()  # unsealed -> finish() raises


def test_duplicate_function_rejected():
    pb = ProgramBuilder()
    pb.function("f")
    with pytest.raises(BuildError):
        pb.function("f")


def test_duplicate_block_rejected():
    pb = ProgramBuilder()
    fb = pb.function("main")
    fb.block("b").halt()
    with pytest.raises(BuildError):
        fb.block("b")


def test_nop_padding_count():
    pb = ProgramBuilder()
    fb = pb.function("main")
    fb.block("b").nop(5).halt()
    program = pb.build()
    block = program.entry_function.entry_block
    assert len(block) == 6


def test_op_generic_emit():
    pb = ProgramBuilder()
    fb = pb.function("main")
    fb.block("b").op(Opcode.XOR, "a", "b", "c").halt()
    program = pb.build()
    assert program.entry_function.entry_block.instructions[0].opcode \
        is Opcode.XOR


def test_validation_runs_on_build():
    pb = ProgramBuilder()
    fb = pb.function("main")
    fb.block("b").jmp("missing")
    with pytest.raises(Exception):  # ValidationError
        pb.build()


def test_validation_can_be_skipped():
    pb = ProgramBuilder()
    fb = pb.function("main")
    fb.block("b").jmp("missing")
    program = pb.build(validate=False)
    assert program.num_blocks() == 1


def test_memory_and_call_instructions_chain():
    pb = ProgramBuilder()
    with pb.function("helper") as fb:
        fb.block("entry").ret()
    with pb.function("main") as fb:
        (fb.block("entry")
           .li("addr", 16)
           .store("addr", "addr", 0)
           .load("out", "addr", 0)
           .mov("copy", "out")
           .neg("negated", "copy")
           .call("helper")
           .halt())
    program = pb.build()
    assert program.num_blocks() == 2
