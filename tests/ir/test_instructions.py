"""Unit tests for the VIR instruction set."""

import pytest

from repro.ir import BINARY_OPS, TERMINATORS, Cond, Opcode
from repro.ir import instructions as ins


class TestCond:
    @pytest.mark.parametrize("cond,lhs,rhs,expected", [
        (Cond.EQ, 3, 3, True), (Cond.EQ, 3, 4, False),
        (Cond.NE, 3, 4, True), (Cond.NE, 3, 3, False),
        (Cond.LT, 2, 3, True), (Cond.LT, 3, 3, False),
        (Cond.LE, 3, 3, True), (Cond.LE, 4, 3, False),
        (Cond.GT, 4, 3, True), (Cond.GT, 3, 3, False),
        (Cond.GE, 3, 3, True), (Cond.GE, 2, 3, False),
    ])
    def test_evaluate(self, cond, lhs, rhs, expected):
        assert cond.evaluate(lhs, rhs) is expected

    def test_float_comparison(self):
        assert Cond.LT.evaluate(1.5, 2.5)
        assert not Cond.GE.evaluate(1.5, 2.5)


class TestInstructionShape:
    def test_terminator_set(self):
        assert Opcode.BR in TERMINATORS
        assert Opcode.JMP in TERMINATORS
        assert Opcode.RET in TERMINATORS
        assert Opcode.HALT in TERMINATORS
        assert Opcode.ADD not in TERMINATORS
        assert Opcode.CALL not in TERMINATORS

    def test_li(self):
        instr = ins.li("r0", 42)
        assert instr.opcode is Opcode.LI
        assert instr.regs == ("r0",)
        assert instr.imm == 42
        assert not instr.is_terminator

    def test_binop_rejects_non_alu(self):
        with pytest.raises(ValueError):
            ins.binop(Opcode.LI, "a", "b", "c")

    def test_all_binary_ops_construct(self):
        for opcode in BINARY_OPS:
            instr = ins.binop(opcode, "d", "a", "b")
            assert instr.regs == ("d", "a", "b")

    def test_branch_successors_taken_first(self):
        instr = ins.br(Cond.EQ, "a", "b", "yes", "no")
        assert instr.successors() == ("yes", "no")
        assert instr.is_terminator
        assert instr.is_conditional_branch

    def test_jmp_successors(self):
        assert ins.jmp("target").successors() == ("target",)

    def test_ret_halt_have_no_successors(self):
        assert ins.ret().successors() == ()
        assert ins.halt().successors() == ()

    def test_non_terminator_successors_empty(self):
        assert ins.add("a", "b", "c").successors() == ()

    def test_load_store_layout(self):
        load = ins.load("rd", "ra", 4)
        assert load.regs == ("rd", "ra") and load.imm == 4
        store = ins.store("rs", "ra", 8)
        assert store.regs == ("rs", "ra") and store.imm == 8

    def test_call_carries_function_name(self):
        assert ins.call("helper").target == "helper"

    def test_instructions_are_immutable(self):
        instr = ins.li("r0", 1)
        with pytest.raises(AttributeError):
            instr.imm = 2  # type: ignore[misc]
