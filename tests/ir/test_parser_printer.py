"""Round-trip and error tests for the textual assembler."""

import pytest

from repro.ir import (Cond, Opcode, ParseError, ProgramBuilder,
                      format_instruction, format_program, parse_program)
from repro.ir import instructions as ins

SOURCE = """
# a tiny program
func main:
  entry:
    li r0, 0
    li r1, 10
    li one, 1
    jmp loop
  loop:
    add r0, r0, r1
    sub r1, r1, one
    br gt, r1, r0, loop, done   # keep looping
  done:
    call helper
    halt

func helper:
  entry:
    nop
    ret
"""


def test_parse_basic_structure():
    program = parse_program(SOURCE)
    assert set(program.functions) == {"main", "helper"}
    assert program.functions["main"].entry == "entry"
    assert len(program.functions["main"].blocks) == 3


def test_round_trip_is_stable():
    program = parse_program(SOURCE)
    text = format_program(program)
    again = parse_program(text)
    assert format_program(again) == text


def test_builder_output_parses_back():
    pb = ProgramBuilder()
    with pb.function("main") as fb:
        (fb.block("entry").li("x", 3).li("y", -2).mul("z", "x", "y")
           .store("z", "x", 1).load("w", "x", 1)
           .br(Cond.NE, "w", "z", taken="a", fall="b"))
        fb.block("a").jmp("b")
        fb.block("b").halt()
    text = format_program(pb.build())
    program = parse_program(text)
    assert format_program(program) == text


@pytest.mark.parametrize("opcode", [
    ins.li("r", 1), ins.mov("a", "b"), ins.neg("a", "b"),
    ins.add("a", "b", "c"), ins.binop(Opcode.FDIV, "a", "b", "c"),
    ins.load("a", "b", 3), ins.store("a", "b", -1), ins.call("f"),
    ins.br(Cond.LE, "a", "b", "x", "y"), ins.jmp("x"), ins.ret(),
    ins.halt(), ins.nop(),
])
def test_every_instruction_formats(opcode):
    text = format_instruction(opcode)
    assert text.startswith(opcode.opcode.value)


def test_float_immediates_round_trip():
    program = parse_program("func main:\n b:\n  li f0, 2.5\n  halt\n")
    instr = program.entry_function.entry_block.instructions[0]
    assert instr.imm == 2.5


@pytest.mark.parametrize("bad,line", [
    ("func main:\n b:\n  bogus r0\n  halt\n", 3),
    ("func main:\n b:\n  li r0\n  halt\n", 3),
    ("func main:\n b:\n  br zz, a, b, x, y\n  halt\n", 3),
    ("func main:\n b:\n  load a, b, 1.5\n  halt\n", 3),
    ("li r0, 1\n", 1),                       # instruction outside block
    ("func main:\n  li r0, 1\n", 2),          # instruction before a label
])
def test_parse_errors_carry_line_numbers(bad, line):
    with pytest.raises(ParseError) as err:
        parse_program(bad, validate=False)
    assert err.value.line == line


def test_label_outside_function_rejected():
    with pytest.raises(ParseError):
        parse_program("b:\n  halt\n")


def test_validation_failure_propagates():
    from repro.ir import ValidationError
    with pytest.raises(ValidationError):
        parse_program("func main:\n b:\n  jmp missing\n")
