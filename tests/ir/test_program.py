"""Unit tests for program/function/block structure."""

import pytest

from repro.ir import (BasicBlock, BlockRef, BuildError, Cond, Function,
                      Program)
from repro.ir import instructions as ins


def _block(label, *instructions):
    return BasicBlock(label, list(instructions))


class TestBasicBlock:
    def test_unsealed_block_has_no_terminator(self):
        block = _block("b", ins.nop())
        assert not block.is_sealed
        with pytest.raises(BuildError):
            _ = block.terminator

    def test_sealed_block(self):
        block = _block("b", ins.nop(), ins.halt())
        assert block.is_sealed
        assert block.terminator.opcode.value == "halt"
        assert list(block.body()) == [ins.nop()]

    def test_conditional_branch_detection(self):
        block = _block("b", ins.br(Cond.EQ, "a", "b", "x", "y"))
        assert block.has_conditional_branch
        assert block.successor_labels() == ("x", "y")

    def test_len(self):
        assert len(_block("b", ins.nop(), ins.halt())) == 2


class TestFunction:
    def test_first_block_is_entry(self):
        fn = Function("f")
        fn.add_block(_block("start", ins.halt()))
        fn.add_block(_block("other", ins.halt()))
        assert fn.entry == "start"
        assert fn.entry_block.label == "start"

    def test_duplicate_label_rejected(self):
        fn = Function("f")
        fn.add_block(_block("b", ins.halt()))
        with pytest.raises(BuildError):
            fn.add_block(_block("b", ins.halt()))

    def test_empty_function_has_no_entry_block(self):
        with pytest.raises(BuildError):
            _ = Function("f").entry_block


class TestProgram:
    def _program(self):
        program = Program()
        main = Function("main")
        main.add_block(_block("entry", ins.jmp("end")))
        main.add_block(_block("end", ins.halt()))
        helper = Function("helper")
        helper.add_block(_block("entry", ins.ret()))
        program.add_function(main)
        program.add_function(helper)
        return program

    def test_block_ids_are_dense_and_ordered(self):
        program = self._program()
        ids = program.block_ids()
        assert ids[BlockRef("main", "entry")] == 0
        assert ids[BlockRef("main", "end")] == 1
        assert ids[BlockRef("helper", "entry")] == 2

    def test_block_table_matches_ids(self):
        program = self._program()
        table = program.block_table()
        for i, (ref, block) in enumerate(table):
            assert program.block_ids()[ref] == i
            assert program.block(ref) is block

    def test_counts(self):
        program = self._program()
        assert program.num_blocks() == 3
        assert program.num_instructions() == 3

    def test_duplicate_function_rejected(self):
        program = self._program()
        with pytest.raises(BuildError):
            program.add_function(Function("main"))

    def test_missing_entry_function(self):
        program = Program(entry="nope")
        with pytest.raises(BuildError):
            _ = program.entry_function

    def test_blockref_accessors(self):
        ref = BlockRef("f", "b")
        assert ref.function == "f"
        assert ref.label == "b"
        assert ref == ("f", "b")

