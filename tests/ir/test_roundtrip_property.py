"""Property: ``parse_program(format_program(p)) == p`` for random programs.

The printer documents itself as the inverse of the parser; this pins the
contract down over hypothesis-generated multi-function, multi-block
programs covering every printable instruction form.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import Cond, format_program, parse_program
from repro.ir import instructions as ins
from repro.ir.instructions import Opcode
from repro.ir.program import BasicBlock, Function, Program

REGS = ["r0", "r1", "r2", "r3"]
ALU = [Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR,
       Opcode.XOR, Opcode.SHL, Opcode.SHR]
CONDS = list(Cond)


@st.composite
def _straightline(draw, function_names):
    kind = draw(st.integers(0, 6))
    rd = draw(st.sampled_from(REGS))
    rs1 = draw(st.sampled_from(REGS))
    rs2 = draw(st.sampled_from(REGS))
    if kind == 0:
        return ins.li(rd, draw(st.integers(-1000, 1000)))
    if kind == 1:
        return ins.mov(rd, rs1)
    if kind == 2:
        return ins.neg(rd, rs1)
    if kind == 3:
        return ins.binop(draw(st.sampled_from(ALU)), rd, rs1, rs2)
    if kind == 4:
        return ins.load(rd, rs1, draw(st.integers(0, 63)))
    if kind == 5:
        return ins.store(rd, rs1, draw(st.integers(0, 63)))
    return ins.call(draw(st.sampled_from(function_names)))


@st.composite
def _function(draw, name, function_names, can_halt):
    num_blocks = draw(st.integers(1, 4))
    labels = [f"b{i}" for i in range(num_blocks)]
    fn = Function(name)
    for i, label in enumerate(labels):
        body = draw(st.lists(_straightline(function_names),
                             min_size=0, max_size=4))
        kind = draw(st.integers(0, 2 if can_halt else 1))
        if kind == 0 and num_blocks > 1:
            target = draw(st.sampled_from(labels))
            fall = draw(st.sampled_from(labels))
            terminator = ins.br(draw(st.sampled_from(CONDS)),
                                draw(st.sampled_from(REGS)),
                                draw(st.sampled_from(REGS)),
                                target, fall)
        elif kind == 1 and num_blocks > 1:
            terminator = ins.jmp(draw(st.sampled_from(labels)))
        elif can_halt:
            terminator = ins.halt()
        else:
            terminator = ins.ret()
        fn.add_block(BasicBlock(label, body + [terminator]))
    return fn


@st.composite
def programs(draw):
    num_helpers = draw(st.integers(0, 2))
    names = ["main"] + [f"fn{i}" for i in range(num_helpers)]
    program = Program()
    for name in names:
        program.add_function(
            draw(_function(name, names, can_halt=(name == "main"))))
    return program


@settings(max_examples=150, deadline=None)
@given(programs())
def test_parse_inverts_format(program):
    text = format_program(program)
    # validate=False: generated programs may have unreachable blocks or
    # jmp-only cycles; syntactic fidelity is the property under test
    assert parse_program(text, validate=False) == program


@settings(max_examples=60, deadline=None)
@given(programs())
def test_round_trip_is_a_fixed_point(program):
    once = format_program(program)
    assert format_program(parse_program(once, validate=False)) == once


def test_negative_immediates_round_trip():
    program = Program()
    fn = Function("main")
    fn.add_block(BasicBlock("entry", [ins.li("a", -42), ins.halt()]))
    program.add_function(fn)
    assert parse_program(format_program(program)) == program
