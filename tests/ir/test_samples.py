"""The sample guest programs compute what they claim."""

import pytest

from repro.interp import Interpreter
from repro.ir import validate_program
from repro.ir.samples import (SAMPLES, branchy_prng, fibonacci, matmul,
                              nested_counters, sieve, sum_loop)


@pytest.mark.parametrize("name", sorted(SAMPLES))
def test_samples_validate_and_halt(name):
    program = SAMPLES[name]()
    validate_program(program)
    result = Interpreter(program, step_limit=10**7).run()
    assert result.halted


def test_sum_loop():
    interp = Interpreter(sum_loop(100))
    interp.run()
    assert interp.state.read("acc") == 5050


@pytest.mark.parametrize("n,expected", [(0, 0), (1, 1), (2, 1), (10, 55),
                                        (20, 6765)])
def test_fibonacci(n, expected):
    interp = Interpreter(fibonacci(n))
    interp.run()
    assert interp.state.read("fib") == expected


def test_nested_counters():
    interp = Interpreter(nested_counters(outer=7, inner=11))
    interp.run()
    assert interp.state.read("acc") == 77


def test_sieve_counts_primes():
    interp = Interpreter(sieve(100), step_limit=10**7)
    interp.run()
    assert interp.state.read("count") == 25  # primes below 100
    # spot-check the flags
    assert interp.state.memory[97] == 0   # prime
    assert interp.state.memory[91] == 1   # 7*13


def test_matmul_identity():
    size = 5
    interp = Interpreter(matmul(size=size), step_limit=10**7)
    interp.run()
    # C = A * I = A, with A[i][j] = i + j
    for i in range(size):
        for j in range(size):
            assert interp.state.memory[3000 + i * size + j] == i + j


def test_branchy_prng_hit_rate():
    interp = Interpreter(branchy_prng(iterations=2000), step_limit=10**7)
    interp.run()
    hits = interp.state.read("hits")
    assert 0.70 <= hits / 2000 <= 0.80  # ~75%-taken branch


def test_branchy_prng_profiles_under_dbt():
    """The sample drives the full instruction-level DBT pipeline."""
    from repro.cfg import cfg_from_program
    from repro.dbt import DBTConfig, TwoPhaseDBT

    program = branchy_prng(iterations=3000)
    cfg, _ = cfg_from_program(program)
    dbt = TwoPhaseDBT(cfg, DBTConfig(threshold=100, pool_trigger_size=2))
    Interpreter(program, listener=dbt, step_limit=10**8).run()
    snapshot = dbt.snapshot()
    assert snapshot.regions
    loop_id = program.block_ids()[("main", "loop")]
    bp = snapshot.branch_probability(loop_id)
    assert bp == pytest.approx(0.75, abs=0.06)
