"""Unit tests for the structural validator."""

import pytest

from repro.ir import (BasicBlock, Cond, Function, Instruction, Opcode,
                      Program, ValidationError, validate_program)
from repro.ir import instructions as ins


def _program_with(block: BasicBlock) -> Program:
    program = Program()
    fn = Function("main")
    fn.add_block(block)
    program.add_function(fn)
    return program


def test_valid_program_passes():
    program = _program_with(BasicBlock("entry", [ins.nop(), ins.halt()]))
    validate_program(program)  # no exception


def test_missing_entry_function():
    program = Program(entry="main")  # empty
    with pytest.raises(ValidationError, match="entry function"):
        validate_program(program)


def test_empty_block():
    with pytest.raises(ValidationError, match="empty block"):
        validate_program(_program_with(BasicBlock("entry", [])))


def test_block_without_terminator():
    with pytest.raises(ValidationError, match="does not end"):
        validate_program(_program_with(BasicBlock("entry", [ins.nop()])))


def test_terminator_in_middle():
    block = BasicBlock("entry", [ins.halt(), ins.nop(), ins.halt()])
    with pytest.raises(ValidationError, match="not last"):
        validate_program(_program_with(block))


def test_branch_to_undefined_block():
    block = BasicBlock("entry", [ins.jmp("missing")])
    with pytest.raises(ValidationError, match="undefined block"):
        validate_program(_program_with(block))


def test_call_to_undefined_function():
    block = BasicBlock("entry", [ins.call("missing"), ins.halt()])
    with pytest.raises(ValidationError, match="undefined function"):
        validate_program(_program_with(block))


def test_wrong_register_arity():
    bad = Instruction(Opcode.ADD, regs=("a", "b"))  # needs 3
    block = BasicBlock("entry", [bad, ins.halt()])
    with pytest.raises(ValidationError, match="expects 3"):
        validate_program(_program_with(block))


def test_li_requires_immediate():
    bad = Instruction(Opcode.LI, regs=("a",))
    block = BasicBlock("entry", [bad, ins.halt()])
    with pytest.raises(ValidationError, match="immediate"):
        validate_program(_program_with(block))


def test_br_requires_condition_and_targets():
    bad = Instruction(Opcode.BR, regs=("a", "b"), target="entry")
    block = BasicBlock("entry", [bad])
    with pytest.raises(ValidationError):
        validate_program(_program_with(block))


def test_all_errors_reported_at_once():
    program = Program()
    fn = Function("main")
    fn.add_block(BasicBlock("a", []))
    fn.add_block(BasicBlock("b", [ins.jmp("missing")]))
    program.add_function(fn)
    with pytest.raises(ValidationError) as err:
        validate_program(program)
    message = str(err.value)
    assert "empty block" in message
    assert "undefined block" in message


def test_function_with_no_blocks():
    program = Program()
    program.add_function(Function("main"))
    with pytest.raises(ValidationError, match="no blocks"):
        validate_program(program)


class TestProgramDiagnostics:
    """Advisory diagnostics: duplicate/mislabelled and unreachable blocks."""

    def test_clean_program_has_no_diagnostics(self):
        from repro.ir.validate import program_diagnostics
        program = _program_with(BasicBlock("entry", [ins.halt()]))
        diags = program_diagnostics(program)
        assert diags.ok
        assert diags.warnings == []

    def test_mislabelled_block_is_an_error(self):
        from repro.ir.validate import program_diagnostics
        program = _program_with(BasicBlock("entry", [ins.halt()]))
        fn = program.functions["main"]
        # alias the same block under a second key: the "duplicate label"
        # shape that survives dict-based construction
        fn.blocks["alias"] = fn.blocks["entry"]
        diags = program_diagnostics(program)
        assert not diags.ok
        assert any("mislabelled/duplicated" in message
                   for _, message in diags.errors)

    def test_unreachable_block_is_a_warning(self):
        from repro.ir.validate import program_diagnostics
        program = _program_with(BasicBlock("entry", [ins.halt()]))
        program.functions["main"].add_block(
            BasicBlock("orphan", [ins.halt()]))
        diags = program_diagnostics(program)
        assert diags.ok  # warning only: the program still validates
        assert ("main:orphan",
                "block is unreachable from the function entry") \
            in diags.warnings

    def test_structural_errors_are_collected_not_raised(self):
        from repro.ir.validate import collect_errors
        program = _program_with(BasicBlock("entry", [ins.nop()]))
        errors = collect_errors(program)
        assert any("terminator" in e for e in errors)


class TestParserDuplicateDiagnostics:
    def test_duplicate_block_label_reports_line(self):
        from repro.ir import ParseError, parse_program
        text = "func main:\nentry:\n    halt\nentry:\n    halt\n"
        with pytest.raises(ParseError, match="duplicate block label") \
                as excinfo:
            parse_program(text)
        assert excinfo.value.line == 4

    def test_duplicate_function_reports_line(self):
        from repro.ir import ParseError, parse_program
        text = "func main:\nentry:\n    halt\nfunc main:\n"
        with pytest.raises(ParseError, match="duplicate function") \
                as excinfo:
            parse_program(text)
        assert excinfo.value.line == 4
