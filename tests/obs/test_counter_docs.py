"""Instrument catalog: every emitted metric documented, docs in sync."""

import os
import re

import repro
from repro.obs import catalog

_SRC_ROOT = os.path.dirname(repro.__file__)
_DOCS = os.path.join(os.path.dirname(_SRC_ROOT), "..", "docs",
                     "observability.md")

_BEGIN = "<!-- counter-table:begin -->"
_END = "<!-- counter-table:end -->"


def test_every_emitted_instrument_is_cataloged():
    found = catalog.scan_sources(_SRC_ROOT)
    assert found, "source scan found no instruments at all"
    missing = catalog.uncataloged(found)
    assert not missing, (
        f"instruments emitted but not documented in "
        f"repro.obs.catalog.CATALOG: {missing}; add an entry (and the "
        f"docs regenerate from the catalog)")


def test_scan_finds_known_sites():
    found = catalog.scan_sources(_SRC_ROOT)
    assert ("counter", "cache.hit") in found
    assert ("histogram", "span.*.seconds") in found     # f-string site
    assert ("gauge", "profile.coverage") in found


def test_wildcards_cover_families():
    assert catalog.find("retry.timeout", "counter") is not None
    assert catalog.find("dispatch.queue_seconds", "histogram") is not None
    assert catalog.find("no.such.metric", "counter") is None
    # kind matters: a counter name is not covered by a histogram entry
    assert catalog.find("span.x.seconds", "counter") is None


def test_docs_table_matches_catalog():
    with open(os.path.normpath(_DOCS), encoding="utf-8") as handle:
        text = handle.read()
    assert _BEGIN in text and _END in text, (
        "docs/observability.md lost its counter-table markers")
    embedded = text.split(_BEGIN, 1)[1].split(_END, 1)[0].strip()
    expected = catalog.markdown_table().strip()
    assert embedded == expected, (
        "docs/observability.md counter table is stale; regenerate with "
        "`python -m repro.obs catalog --markdown`")


def test_markdown_table_shape():
    table = catalog.markdown_table()
    lines = table.splitlines()
    assert lines[0] == "| Instrument | Kind | Meaning |"
    assert len(lines) == len(catalog.CATALOG) + 2
    assert all(re.match(r"^\| `.+` \| (counter|gauge|histogram) \| ", line)
               for line in lines[2:])
