"""Flight recorder: ring bounds, hooks, dump files, directory resolution."""

import json
import os

import pytest

from repro.obs import flightrec
from repro.obs.log import get_logger
from repro.obs.registry import (counter_value, disable, enable,
                                reset_metrics)
from repro.obs.spans import clear_trace, span


@pytest.fixture(autouse=True)
def _clean_ring():
    flightrec.clear()
    yield
    flightrec.clear()


def test_ring_is_bounded_and_oldest_falls_off():
    recorder = flightrec.FlightRecorder(capacity=3)
    for i in range(5):
        recorder.record("log", f"event-{i}")
    events = recorder.export()
    assert len(events) == 3
    assert [e["name"] for e in events] == ["event-2", "event-3", "event-4"]
    assert [e["seq"] for e in events] == [3, 4, 5]


def test_capacity_env_override(monkeypatch):
    monkeypatch.setenv(flightrec.CAPACITY_ENV, "7")
    assert flightrec.FlightRecorder().capacity == 7
    monkeypatch.setenv(flightrec.CAPACITY_ENV, "0")
    with pytest.raises(ValueError):
        flightrec.FlightRecorder()
    monkeypatch.setenv(flightrec.CAPACITY_ENV, "nope")
    with pytest.raises(ValueError):
        flightrec.FlightRecorder()


def test_restore_replaces_contents_and_respects_capacity():
    recorder = flightrec.FlightRecorder(capacity=2)
    recorder.record("log", "mine")
    recorder.restore([{"name": f"theirs-{i}"} for i in range(4)])
    assert [e["name"] for e in recorder.export()] == \
        ["theirs-2", "theirs-3"]


def test_colliding_payload_fields_are_prefixed_not_dropped():
    recorder = flightrec.FlightRecorder(capacity=4)
    recorder.record("log", "fault", kind="crash", detail="x")
    (event,) = recorder.export()
    assert event["kind"] == "log"          # the ring's own key wins
    assert event["field_kind"] == "crash"  # the payload survives
    assert event["detail"] == "x"


def test_spans_and_logs_feed_the_global_ring():
    with span("test.flight"):
        pass
    get_logger("test.flight").debug("breadcrumb", step=3)
    kinds = {(e["kind"], e["name"]) for e in flightrec.export()}
    assert ("span", "test.flight") in kinds
    assert ("log", "breadcrumb") in kinds


def test_ring_is_gated_on_registry_enabled():
    disable()
    try:
        flightrec.record("log", "invisible")
    finally:
        enable()
    assert flightrec.export() == []


def test_resolve_flight_dir_precedence(monkeypatch):
    monkeypatch.delenv(flightrec.FLIGHT_DIR_ENV, raising=False)
    assert flightrec.resolve_flight_dir("explicit", "cache") == "explicit"
    monkeypatch.setenv(flightrec.FLIGHT_DIR_ENV, "from-env")
    assert flightrec.resolve_flight_dir(None, "cache") == "from-env"
    monkeypatch.delenv(flightrec.FLIGHT_DIR_ENV)
    assert flightrec.resolve_flight_dir(None, "cache") == \
        os.path.join("cache", "flight")
    assert flightrec.resolve_flight_dir(None, None) is None


def test_write_dump_is_self_contained(tmp_path):
    clear_trace()
    reset_metrics()
    flightrec.record("log", "parent-side")
    worker_ring = [{"seq": 1, "kind": "span", "name": "replay.run"}]
    path = flightrec.write_dump(
        str(tmp_path), "gzip", "timeout",
        context={"reason": "timeout", "attempts": 3,
                 "error": "exceeded job timeout 2.0s"},
        worker_events=worker_ring)
    assert os.path.basename(path) == "flight-gzip-timeout.json"
    with open(path) as handle:
        dump = json.load(handle)
    assert dump["dump_version"] == flightrec.DUMP_VERSION
    assert dump["benchmark"] == "gzip"
    assert dump["context"]["attempts"] == 3
    assert dump["worker_flight"] == worker_ring
    assert any(e["name"] == "parent-side" for e in dump["parent_flight"])
    assert "counters" in dump["metrics"]
    assert counter_value("flight.dumps") == 1


def test_write_dump_without_worker_ring(tmp_path):
    path = flightrec.write_dump(str(tmp_path), "mcf", "crash",
                                context={"reason": "crash"})
    with open(path) as handle:
        assert json.load(handle)["worker_flight"] is None
