"""Histogram percentile audit across export/merge, property-tested.

Workers ship raw histogram observations (``export_state``) and the
parent folds them in (``merge_state``); the figures-of-merit pipeline
then reads p50/p99 off the merged registry.  These tests pin the
algebra: merging is lossless and associative, and the percentile
estimator agrees with numpy's linear interpolation exactly — so a
parallel run's histograms are indistinguishable from a serial run's.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import Histogram, MetricsRegistry

finite_floats = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False,
                          width=64)
value_lists = st.lists(finite_floats, min_size=1, max_size=60)


def _registry_with(values):
    registry = MetricsRegistry()
    histogram = registry.histogram("test.values")
    for value in values:
        histogram.observe(value)
    registry.counter("test.count").inc(len(values))
    return registry


# -- exactness against numpy --------------------------------------------------


@given(values=value_lists, p=st.floats(min_value=0, max_value=100))
@settings(max_examples=200, deadline=None)
def test_percentile_matches_numpy_linear_interpolation(values, p):
    histogram = Histogram("test")
    for value in values:
        histogram.observe(value)
    expected = float(np.percentile(np.array(values), p))
    assert histogram.percentile(p) == pytest.approx(expected,
                                                    rel=1e-9, abs=1e-9)


@given(values=value_lists)
@settings(max_examples=100, deadline=None)
def test_summary_percentiles_are_order_statistics(values):
    histogram = Histogram("test")
    for value in values:
        histogram.observe(value)
    summary = histogram.summary()
    assert summary["min"] <= summary["p50"] <= summary["p99"] \
        <= summary["max"]
    assert summary["count"] == len(values)
    assert summary["sum"] == pytest.approx(sum(values))


# -- export/merge round-trips -------------------------------------------------


@given(values=value_lists)
@settings(max_examples=100, deadline=None)
def test_export_merge_round_trip_is_lossless(values):
    source = _registry_with(values)
    target = MetricsRegistry()
    target.merge_state(source.export_state())
    assert target.histogram("test.values").values() == \
        source.histogram("test.values").values()
    assert target.export_state() == source.export_state()


@given(a=value_lists, b=value_lists)
@settings(max_examples=100, deadline=None)
def test_merged_percentiles_equal_percentiles_of_the_union(a, b):
    parent = _registry_with(a)
    parent.merge_state(_registry_with(b).export_state())
    merged = parent.histogram("test.values")
    union = np.array(a + b)
    for p in (50, 90, 99):
        assert merged.percentile(p) == pytest.approx(
            float(np.percentile(union, p)), rel=1e-9, abs=1e-9)
    assert parent.counter("test.count").value == len(a) + len(b)


@given(a=value_lists, b=value_lists, c=value_lists)
@settings(max_examples=60, deadline=None)
def test_merge_is_associative_up_to_summary(a, b, c):
    # (A + B) + C merged left-to-right...
    left = MetricsRegistry()
    ab = MetricsRegistry()
    ab.merge_state(_registry_with(a).export_state())
    ab.merge_state(_registry_with(b).export_state())
    left.merge_state(ab.export_state())
    left.merge_state(_registry_with(c).export_state())
    # ...vs A + (B + C): summaries (order-independent views) must agree.
    right = MetricsRegistry()
    bc = MetricsRegistry()
    bc.merge_state(_registry_with(b).export_state())
    bc.merge_state(_registry_with(c).export_state())
    right.merge_state(_registry_with(a).export_state())
    right.merge_state(bc.export_state())

    ls = left.histogram("test.values").summary()
    rs = right.histogram("test.values").summary()
    assert ls["count"] == rs["count"]
    for key in ("sum", "min", "max", "mean", "p50", "p90", "p99"):
        assert ls[key] == pytest.approx(rs[key], rel=1e-9, abs=1e-9)
    assert left.counter("test.count").value == \
        right.counter("test.count").value


def test_merge_gauges_last_write_wins_and_none_skipped():
    target = MetricsRegistry()
    target.gauge("g").set(1)
    target.merge_state({"gauges": {"g": 2, "h": None}})
    assert target.gauge("g").value == 2
    assert target.gauge("h").value is None
