"""Structured logger: configure(), levels, text and JSON rendering."""

import io
import json

import pytest

from repro.obs import log as obslog


@pytest.fixture
def capture():
    """Configure logging into a StringIO, restoring state afterwards."""
    saved = (obslog._CONFIG.level, obslog._CONFIG.json_mode,
             obslog._CONFIG.stream, obslog._CONFIG.configured)
    stream = io.StringIO()

    def conf(**kwargs):
        kwargs.setdefault("stream", stream)
        obslog.configure(**kwargs)
        return stream

    yield conf
    (obslog._CONFIG.level, obslog._CONFIG.json_mode,
     obslog._CONFIG.stream, obslog._CONFIG.configured) = saved


def test_text_mode_key_values(capture):
    stream = capture(level="info")
    log = obslog.get_logger("repro.test")
    log.info("benchmark done", bench="gzip", seconds=3.125)
    line = stream.getvalue()
    assert "INFO" in line
    assert "repro.test: benchmark done" in line
    assert "bench=gzip" in line
    assert "seconds=3.125" in line


def test_json_mode_one_object_per_line(capture):
    stream = capture(level="debug", json_mode=True)
    log = obslog.get_logger("repro.test")
    log.warning("stale cache", path="/tmp/x.json")
    record = json.loads(stream.getvalue())
    assert record["level"] == "warning"
    assert record["logger"] == "repro.test"
    assert record["event"] == "stale cache"
    assert record["path"] == "/tmp/x.json"


def test_level_filtering(capture):
    stream = capture(level="warning")
    log = obslog.get_logger("repro.test")
    log.info("hidden")
    log.debug("hidden too")
    assert stream.getvalue() == ""
    log.error("shown")
    assert "shown" in stream.getvalue()


def test_unknown_level_rejected():
    with pytest.raises(ValueError):
        obslog.configure(level="chatty")


def test_values_with_spaces_are_quoted(capture):
    stream = capture(level="info")
    obslog.get_logger("repro.test").info("msg", detail="two words")
    assert "detail='two words'" in stream.getvalue()


def test_get_logger_is_cached():
    assert obslog.get_logger("repro.same") is obslog.get_logger("repro.same")


def test_is_configured_flag(capture):
    capture(level="info")
    assert obslog.is_configured()
