"""Phase profiler: exclusive-time sweep, coverage, sampling, gating."""

import pytest

from repro.obs.profile import (PHASE_OF_SPAN, PhaseProfile, phase_of,
                               profile_span, profiling_enabled,
                               reset_sampling, resolve_profile,
                               sampled_span, set_profiling)
from repro.obs.registry import disable, enable
from repro.obs.spans import NULL_SPAN, clear_trace, span, trace_events


def _event(name, ts, dur, pid=1, tid=1):
    return {"name": name, "ph": "X", "ts": ts, "dur": dur,
            "pid": pid, "tid": tid, "args": {}}


@pytest.fixture(autouse=True)
def _profiling_off():
    yield
    set_profiling(False)
    reset_sampling()


# -- the exclusive-time sweep -------------------------------------------------


def test_exclusive_time_subtracts_direct_children():
    # parent [0, 100], children [10, 30] and [50, 20] -> exclusive 50.
    profile = PhaseProfile.from_events([
        _event("perf_model", 0, 100),
        _event("cache.save_shard", 10, 30),
        _event("cache.load_shard", 50, 20),
    ])
    assert profile.total_seconds == pytest.approx(100 / 1e6)
    assert profile.phases["perfmodel"] == pytest.approx(50 / 1e6)
    assert profile.phases["cache-io"] == pytest.approx(50 / 1e6)


def test_grandchildren_charge_their_parent_not_the_root():
    # root [0,100] > mid [10,60] > leaf [20,30]: root excl 40, mid 30.
    profile = PhaseProfile.from_events([
        _event("full_study", 0, 100),
        _event("study_benchmark", 10, 60),
        _event("record_traces", 20, 30),
    ])
    assert profile.phases["harness"] == pytest.approx((40 + 30) / 1e6)
    assert profile.phases["walker"] == pytest.approx(30 / 1e6)
    # Attribution is complete: phases sum to the root total.
    assert sum(profile.phases.values()) == \
        pytest.approx(profile.total_seconds)


def test_lanes_are_independent_and_sum():
    profile = PhaseProfile.from_events([
        _event("replay.run", 0, 50, pid=1),
        _event("replay.run", 0, 70, pid=2),
    ])
    assert profile.total_seconds == pytest.approx(120 / 1e6)
    assert len(profile.lanes) == 2


def test_sibling_roots_in_one_lane_both_count():
    profile = PhaseProfile.from_events([
        _event("replay.run", 0, 50),
        _event("perf_model", 60, 40),
    ])
    assert profile.total_seconds == pytest.approx(90 / 1e6)
    assert profile.coverage == pytest.approx(1.0)


def test_coverage_excludes_harness_and_other():
    profile = PhaseProfile.from_events([
        _event("full_study", 0, 100),      # harness
        _event("replay.run", 0, 60),       # named
        _event("test.unmapped", 60, 20),   # other
    ])
    # replay.run and test.unmapped nest inside full_study.
    assert profile.total_seconds == pytest.approx(100 / 1e6)
    assert profile.coverage == pytest.approx(0.6)
    assert phase_of("test.unmapped") == "other"


def test_to_dict_round_trips_through_render():
    profile = PhaseProfile.from_events([
        _event("replay.run", 0, 60),
        _event("perf_model", 70, 40),
    ])
    data = profile.to_dict()
    assert data["coverage"] == pytest.approx(1.0)
    assert set(data["phases"]) == {"replay-walk", "perfmodel"}
    text = PhaseProfile.render(data)
    assert "replay-walk" in text and "perfmodel" in text
    assert "100.0% attributed" in text


def test_hotspots_rank_by_inclusive_time():
    profile = PhaseProfile.from_events([
        _event("perf_model", 0, 100),
        _event("replay.run", 10, 80),
    ])
    names = [name for name, _, _ in profile.hotspots()]
    assert names == ["perf_model", "replay.run"]


def test_every_harness_span_name_maps_to_a_phase():
    # The map itself must stay total over the names the harness emits;
    # a rename that misses this table would silently lower coverage.
    for name in ("full_study", "study_benchmark", "record_traces",
                 "threshold_sweep", "perf_model", "dispatch.wait",
                 "dispatch.merge", "cache.save_shard"):
        assert name in PHASE_OF_SPAN


# -- profiling mode and sampling ----------------------------------------------


def test_profile_span_gated_on_profiling_mode():
    set_profiling(False)
    assert profile_span("region.form") is NULL_SPAN
    set_profiling(True)
    assert profiling_enabled()
    clear_trace()
    with profile_span("region.form", blocks=3):
        pass
    assert [e["name"] for e in trace_events()] == ["region.form"]


def test_profiling_requires_registry_enabled():
    set_profiling(True)
    disable()
    try:
        assert not profiling_enabled()
        assert profile_span("region.form") is NULL_SPAN
    finally:
        enable()


def test_sampled_span_every_nth_deterministic(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE_SAMPLE", "3")
    set_profiling(True)

    def recorded_pattern():
        reset_sampling()
        clear_trace()
        for _ in range(7):
            with sampled_span("region.form"):
                pass
        return len(trace_events())

    # Calls 0, 3, 6 record: identical on every run — no randomness.
    assert recorded_pattern() == 3
    assert recorded_pattern() == 3


def test_sampled_span_counts_per_site(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE_SAMPLE", "2")
    set_profiling(True)
    reset_sampling()
    clear_trace()
    for _ in range(2):
        with sampled_span("site.a"):
            pass
        with sampled_span("site.b"):
            pass
    names = sorted(e["name"] for e in trace_events())
    assert names == ["site.a", "site.b"]  # each site's first call


def test_resolve_profile_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    assert resolve_profile(None) is False
    assert resolve_profile(True) is True
    monkeypatch.setenv("REPRO_PROFILE", "1")
    assert resolve_profile(None) is True
    assert resolve_profile(False) is False  # explicit beats env
    monkeypatch.setenv("REPRO_PROFILE", "junk")
    with pytest.raises(ValueError):
        resolve_profile(None)
