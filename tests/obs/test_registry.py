"""Registry semantics: counters, gauges, histograms, the no-op path."""

import json

import pytest

from repro.obs import registry as reg
from repro.obs.registry import (Counter, Histogram, MetricsRegistry,
                                counter_value, disable, enable, enabled,
                                inc, metrics_snapshot, observe, set_gauge,
                                write_metrics)


@pytest.fixture
def registry():
    return MetricsRegistry()


def test_counter_get_or_create_identity(registry):
    a = registry.counter("x")
    b = registry.counter("x")
    assert a is b
    assert registry.counter("y") is not a


def test_counter_increments(registry):
    c = registry.counter("c")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_gauge_last_write_wins(registry):
    g = registry.gauge("g")
    assert g.value is None
    g.set(3)
    g.set(7.5)
    assert g.value == 7.5


def test_histogram_summary_percentiles(registry):
    h = registry.histogram("h")
    for v in range(1, 101):
        h.observe(v)
    summary = h.summary()
    assert summary["count"] == 100
    assert summary["min"] == 1 and summary["max"] == 100
    assert summary["mean"] == pytest.approx(50.5)
    assert summary["p50"] == pytest.approx(50.5)
    assert summary["p90"] == pytest.approx(90.1)
    assert summary["p99"] == pytest.approx(99.01)


def test_histogram_empty_and_singleton():
    h = Histogram("h")
    assert h.summary() == {"count": 0}
    with pytest.raises(ValueError):
        h.percentile(50)
    h.observe(2.0)
    assert h.summary()["p99"] == 2.0


def test_snapshot_shape(registry):
    registry.counter("a").inc(2)
    registry.gauge("b").set(1)
    registry.histogram("c").observe(3)
    snap = registry.snapshot()
    assert snap["counters"] == {"a": 2}
    assert snap["gauges"] == {"b": 1}
    assert snap["histograms"]["c"]["count"] == 1
    json.dumps(snap)  # must be serialisable


def test_reset(registry):
    registry.counter("a").inc()
    registry.reset()
    assert registry.snapshot()["counters"] == {}


def test_global_helpers_roundtrip():
    before = counter_value("test.helper")
    inc("test.helper", 3)
    assert counter_value("test.helper") == before + 3
    set_gauge("test.gauge", 9)
    observe("test.hist", 1.0)
    snap = metrics_snapshot()
    assert snap["gauges"]["test.gauge"] == 9
    assert snap["histograms"]["test.hist"]["count"] >= 1


def test_disabled_is_noop():
    assert enabled()
    before = counter_value("test.disabled")
    disable()
    try:
        assert not enabled()
        inc("test.disabled", 100)
        set_gauge("test.disabled.gauge", 1)
        observe("test.disabled.hist", 1.0)
        assert counter_value("test.disabled") == before
        snap = metrics_snapshot()
        assert "test.disabled.gauge" not in snap["gauges"]
        assert "test.disabled.hist" not in snap["histograms"]
    finally:
        enable()
    inc("test.disabled")
    assert counter_value("test.disabled") == before + 1


def test_write_metrics(tmp_path):
    inc("test.written")
    path = tmp_path / "m" / "metrics.json"
    write_metrics(str(path))
    with open(path) as f:
        payload = json.load(f)
    assert payload["counters"]["test.written"] >= 1


def test_registry_isolated_from_global(registry):
    registry.counter("test.isolated").inc()
    assert "test.isolated" not in reg.metrics_snapshot()["counters"]


def test_export_state_keeps_raw_histogram_values(registry):
    registry.counter("c").inc(3)
    registry.gauge("g").set(0.5)
    registry.histogram("h").observe(1.0)
    registry.histogram("h").observe(3.0)
    state = registry.export_state()
    assert state["counters"]["c"] == 3
    assert state["gauges"]["g"] == 0.5
    assert state["histograms"]["h"] == [1.0, 3.0]


def test_merge_state_is_lossless(registry):
    worker = MetricsRegistry()
    worker.counter("c").inc(2)
    worker.gauge("g").set(7)
    worker.histogram("h").observe(10.0)

    registry.counter("c").inc(1)
    registry.histogram("h").observe(2.0)
    registry.merge_state(worker.export_state())

    assert registry.counter("c").value == 3
    assert registry.gauge("g").value == 7
    # Percentiles are computed over the union of observations.
    assert registry.histogram("h").summary()["max"] == 10.0
    assert registry.histogram("h").count == 2


def test_merge_state_twice_accumulates(registry):
    worker = MetricsRegistry()
    worker.counter("c").inc(5)
    state = worker.export_state()
    registry.merge_state(state)
    registry.merge_state(state)
    assert registry.counter("c").value == 10
