"""The report CLI: discovery, diffing, Prometheus export, exit codes."""

import json
import os

import pytest

from repro.obs.__main__ import EXIT_REGRESSION, main
from repro.obs import report


def _manifest(total=10.0, coverage=0.97, phases=None, created="2026-01-01"):
    phases = phases or {"walker": 4.0, "perfmodel": 5.0}
    return {
        "manifest_version": 1,
        "fingerprint": "abc123",
        "created_at": created,
        "benchmarks": ["gzip", "mcf"],
        "total_seconds": total,
        "timings": {"gzip": total * 0.6, "mcf": total * 0.4},
        "metrics": {
            "counters": {"replay.runs": 4},
            "gauges": {"profile.coverage": coverage, "unset": None},
            "histograms": {
                "dispatch.execute_seconds":
                    {"count": 2, "sum": 1.0, "min": 0.4, "max": 0.6,
                     "mean": 0.5, "p50": 0.5, "p90": 0.58, "p99": 0.6},
                "empty": {"count": 0},
            },
        },
        "profile": {
            "total_seconds": total, "attributed_seconds": total * coverage,
            "coverage": coverage, "lanes": 1,
            "phases": {name: {"seconds": seconds,
                              "share": seconds / total, "spans": 3}
                       for name, seconds in phases.items()},
            "hotspots": [],
        },
        "dispatch": {
            "jobs": 2, "records": 2, "overhead_ratio": 0.02,
            "effective_parallelism": 1.9,
            "segments_seconds": {"execute": 9.0, "queue": 0.1},
        },
    }


def _write_aggregate(path, manifest):
    with open(path, "w") as handle:
        json.dump({"version": 6, "manifest": manifest, "shards": {}},
                  handle)


@pytest.fixture
def cache(tmp_path):
    _write_aggregate(str(tmp_path / "study-abc123.json"), _manifest())
    return str(tmp_path)


# -- discovery and schema sniffing --------------------------------------------


def test_discover_runs_newest_first(tmp_path):
    old = tmp_path / "study-old.json"
    new = tmp_path / "study-new.json"
    _write_aggregate(str(old), _manifest())
    _write_aggregate(str(new), _manifest())
    os.utime(old, (1, 1))
    assert [os.path.basename(p)
            for p in report.discover_runs(str(tmp_path))] == \
        ["study-new.json", "study-old.json"]


def test_manifest_of_sniffs_all_shapes():
    manifest = _manifest()
    assert report.manifest_of({"manifest": manifest}) is manifest
    assert report.manifest_of(manifest) is manifest
    assert report.manifest_of({"serial_seconds": 3.0}) is None


def test_render_report_includes_profile_and_dispatch(cache):
    path = report.resolve_run(None, cache)
    text = report.render_report(path)
    assert "phase profile" in text
    assert "dispatch breakdown" in text
    assert "abc123" in text


# -- flattening and diffing ---------------------------------------------------


def test_comparable_metrics_picks_timings_profile_dispatch():
    flat = report.comparable_metrics({"manifest": _manifest()})
    assert flat["total_seconds"] == 10.0
    assert flat["timings.gzip"] == 6.0
    assert flat["profile.coverage"] == 0.97
    assert flat["profile.phases.walker"] == 4.0
    assert flat["dispatch.segments_seconds.execute"] == 9.0
    # counters do not leak into the diff
    assert not any(k.startswith("metrics") for k in flat)


def test_comparable_metrics_bench_baseline_flattens_all_numbers():
    flat = report.comparable_metrics(
        {"serial_seconds": 3.0, "speedup": 1.9,
         "kernel": {"vector_seconds": 1.0},
         "figure_data_identical": True, "benchmarks": ["gzip"]})
    assert flat == {"serial_seconds": 3.0, "speedup": 1.9,
                    "kernel.vector_seconds": 1.0}


def test_direction_of_classifies_keys():
    assert report.direction_of("total_seconds") == -1
    assert report.direction_of("dispatch.overhead_ratio") == -1
    assert report.direction_of("profile.coverage") == 1
    assert report.direction_of("speedup") == 1
    assert report.direction_of("replay.runs") == 0


def test_diff_flags_directional_regressions_only():
    rows = report.diff_metrics(
        {"total_seconds": 10.0, "coverage": 0.9, "runs": 5.0},
        {"total_seconds": 12.0, "coverage": 0.5, "runs": 50.0},
        threshold=0.10)
    by_key = {r["key"]: r for r in rows}
    assert by_key["total_seconds"]["regression"]     # +20% slower
    assert by_key["coverage"]["regression"]          # attribution lost
    assert not by_key["runs"]["regression"]          # informational


def test_diff_improvements_and_noise_are_not_regressions():
    rows = report.diff_metrics(
        {"total_seconds": 10.0, "tiny_seconds": 0.001},
        {"total_seconds": 8.0, "tiny_seconds": 0.005},
        threshold=0.10)
    assert not any(r["regression"] for r in rows)


def test_render_diff_lists_regressions():
    rows = report.diff_metrics({"total_seconds": 10.0},
                               {"total_seconds": 20.0}, threshold=0.10)
    text = report.render_diff(rows)
    assert "1 regression(s)" in text
    assert "total_seconds" in text


# -- boolean flags, nulls and dropped keys (diff blind spots) -----------------


def test_bool_direction_classifies_keys():
    assert report.bool_direction("figure_data_identical") == 1
    assert report.bool_direction("kernel.figure_data_identical") == 1
    assert report.bool_direction("checks_passed") == 1
    assert report.bool_direction("verify") == 0  # config, not health


def test_comparable_flags_flattens_bool_leaves():
    flags = report.comparable_flags(
        {"figure_data_identical": True, "serial_seconds": 3.0,
         "kernel": {"figure_data_identical": False}, "verify": True})
    assert flags == {"figure_data_identical": True,
                     "kernel.figure_data_identical": False,
                     "verify": True}


def test_diff_flags_true_to_false_is_a_regression():
    rows = report.diff_flags(
        {"figure_data_identical": True, "verify": True, "same": True},
        {"figure_data_identical": False, "verify": False, "same": True})
    by_key = {r["key"]: r for r in rows}
    assert set(by_key) == {"figure_data_identical", "verify"}  # flips only
    # The healthy-bool flip is a regression; the config flip is not.
    assert by_key["figure_data_identical"]["regression"]
    assert not by_key["verify"]["regression"]
    # ...and the healing flip (false -> true) is never a regression.
    healed = report.diff_flags({"figure_data_identical": False},
                               {"figure_data_identical": True})
    assert not healed[0]["regression"]


def test_comparable_nulls_reports_directional_keys_only():
    nulls = report.comparable_nulls(
        {"speedup": None, "note": None, "serial_seconds": 3.0,
         "dispatch": {"overhead_ratio": None}})
    # A null speedup means the gate silently vanished — worth a line; a
    # null informational key is not.
    assert sorted(nulls) == ["dispatch.overhead_ratio", "speedup"]


def test_dropped_keys_names_one_sided_metrics():
    rows = report.dropped_keys({"a_seconds": 1.0, "shared_seconds": 2.0},
                               {"b_seconds": 3.0, "shared_seconds": 2.5})
    assert {(r["key"], r["side"]) for r in rows} == \
        {("a_seconds", "baseline"), ("b_seconds", "candidate")}


def test_run_flags_reads_top_level_list():
    assert report.run_flags({"flags": ["insufficient_cores"]}) == \
        ["insufficient_cores"]
    assert report.run_flags({"flags": "nope"}) == []
    assert report.run_flags({}) == []


# -- Prometheus export --------------------------------------------------------


def test_prometheus_text_exposition_shape():
    text = report.prometheus_text(_manifest()["metrics"])
    assert "# TYPE repro_replay_runs_total counter" in text
    assert "repro_replay_runs_total 4" in text
    assert "# TYPE repro_profile_coverage gauge" in text
    assert 'repro_dispatch_execute_seconds{quantile="0.99"} 0.6' in text
    assert "repro_dispatch_execute_seconds_count 2" in text
    # empty histograms and unset gauges are skipped
    assert "repro_empty" not in text
    assert "repro_unset" not in text


def test_prom_name_sanitises():
    assert report.prom_name("a.b-c") == "repro_a_b_c"
    assert report.prom_name("0day") == "repro__0day"


# -- the CLI ------------------------------------------------------------------


def test_cli_report_and_json(cache, capsys):
    assert main(["report", "--cache-dir", cache]) == 0
    assert "phase profile" in capsys.readouterr().out
    assert main(["report", "--cache-dir", cache, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["fingerprint"] == "abc123"


def test_cli_report_list(cache, capsys):
    assert main(["report", "--cache-dir", cache, "--list"]) == 0
    out = capsys.readouterr().out
    assert "abc123" in out and "97.0%" in out


def test_cli_report_missing_cache(tmp_path, capsys):
    assert main(["report", "--cache-dir", str(tmp_path)]) == 2
    assert "no run aggregates" in capsys.readouterr().err


def test_cli_prom_writes_textfile(cache, tmp_path, capsys):
    out = str(tmp_path / "metrics.prom")
    assert main(["prom", "--cache-dir", cache, "--out", out]) == 0
    with open(out) as handle:
        assert "repro_replay_runs_total 4" in handle.read()


def test_cli_diff_exit_codes(cache, tmp_path, capsys):
    run = report.resolve_run(None, cache)
    assert main(["diff", run, run]) == 0
    slow = str(tmp_path / "slow.json")
    _write_aggregate(slow, _manifest(total=20.0, coverage=0.5))
    assert main(["diff", run, slow, "--threshold", "10"]) == \
        EXIT_REGRESSION
    out = capsys.readouterr().out
    assert "regression" in out


def test_cli_diff_against_bench_baseline(cache, tmp_path):
    # Disjoint schemas degrade to the (empty) common subset, not a crash.
    bench = str(tmp_path / "BENCH_study.json")
    with open(bench, "w") as handle:
        json.dump({"serial_seconds": 3.0, "speedup": 2.0}, handle)
    assert main(["diff", bench, report.resolve_run(None, cache)]) == 0


def test_cli_diff_flag_flip_regresses_and_prints(tmp_path, capsys):
    before = str(tmp_path / "before.json")
    after = str(tmp_path / "after.json")
    with open(before, "w") as handle:
        json.dump({"serial_seconds": 3.0,
                   "figure_data_identical": True}, handle)
    with open(after, "w") as handle:
        json.dump({"serial_seconds": 3.0,
                   "figure_data_identical": False}, handle)
    # No numeric regression at all — the boolean flip alone must gate.
    assert main(["diff", before, after]) == EXIT_REGRESSION
    out = capsys.readouterr().out
    assert "flag figure_data_identical: True -> False" in out
    assert "<-- regression" in out


def test_cli_diff_prints_nulls_flags_and_dropped_keys(tmp_path, capsys):
    before = str(tmp_path / "before.json")
    after = str(tmp_path / "after.json")
    with open(before, "w") as handle:
        json.dump({"serial_seconds": 3.0, "speedup": None,
                   "old_only_seconds": 1.0,
                   "flags": ["insufficient_cores"]}, handle)
    with open(after, "w") as handle:
        json.dump({"serial_seconds": 3.0, "speedup": 1.5,
                   "flags": []}, handle)
    # None of the blind spots is a regression, but all are said out loud.
    assert main(["diff", before, after]) == 0
    out = capsys.readouterr().out
    assert "null speedup (baseline)" in out
    assert "baseline flags: insufficient_cores" in out
    assert "baseline-only key(s) not compared: old_only_seconds" in out
    assert "candidate-only key(s) not compared: speedup" in out


def test_cli_catalog_markdown(capsys):
    assert main(["catalog", "--markdown"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("| Instrument | Kind | Meaning |")
