"""Span nesting, Chrome-trace export, and the disabled fast path."""

import json
import threading

from repro.obs.registry import disable, enable, metrics_snapshot
from repro.obs.spans import (NULL_SPAN, clear_trace, current_span, span,
                             trace_events, write_trace)


def _events_named(name):
    return [e for e in trace_events() if e["name"] == name]


def test_span_records_complete_event():
    clear_trace()
    with span("test.outer", bench="gzip"):
        pass
    (event,) = _events_named("test.outer")
    assert event["ph"] == "X"
    assert event["ts"] >= 0
    assert event["dur"] >= 0
    assert event["args"]["bench"] == "gzip"
    assert event["args"]["depth"] == 0
    assert "parent" not in event["args"]


def test_span_nesting_depth_and_parent():
    clear_trace()
    with span("test.parent"):
        assert current_span().name == "test.parent"
        with span("test.child"):
            assert current_span().name == "test.child"
    assert current_span() is None
    (child,) = _events_named("test.child")
    (parent,) = _events_named("test.parent")
    assert child["args"]["depth"] == 1
    assert child["args"]["parent"] == "test.parent"
    # The child completes first and fits inside the parent's window.
    assert child["ts"] >= parent["ts"]
    assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-3


def test_span_feeds_duration_histogram():
    with span("test.timed"):
        pass
    hist = metrics_snapshot()["histograms"]["span.test.timed.seconds"]
    assert hist["count"] >= 1
    assert hist["min"] >= 0


def test_span_records_exceptions():
    clear_trace()
    try:
        with span("test.raises"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    (event,) = _events_named("test.raises")
    assert event["args"]["error"] == "RuntimeError"
    assert current_span() is None


def test_write_trace_loads_as_chrome_trace(tmp_path):
    clear_trace()
    with span("test.export"):
        pass
    path = tmp_path / "trace.json"
    write_trace(str(path))
    with open(path) as f:
        payload = json.load(f)
    assert isinstance(payload["traceEvents"], list)
    event = payload["traceEvents"][0]
    assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)


def test_disabled_returns_shared_null_span():
    disable()
    try:
        s = span("test.disabled")
        assert s is NULL_SPAN
        assert span("test.other") is s  # no allocation on the fast path
        clear_trace()
        with s:
            pass
        assert trace_events() == []
    finally:
        enable()


def test_spans_are_thread_local():
    clear_trace()
    seen = {}

    def worker():
        with span("test.thread"):
            seen["inner"] = current_span().name

    with span("test.main"):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
        # The other thread's span never leaked onto this stack.
        assert current_span().name == "test.main"
    assert seen["inner"] == "test.thread"
    (event,) = _events_named("test.thread")
    assert event["args"]["depth"] == 0


def test_extend_trace_appends_foreign_events():
    from repro.obs.spans import extend_trace, trace_events

    clear_trace()
    with span("test.local"):
        pass
    foreign = [{"name": "test.foreign", "cat": "repro", "ph": "X",
                "ts": 1.0, "dur": 2.0, "pid": 999, "tid": 1, "args": {}}]
    extend_trace(foreign)
    names = [e["name"] for e in trace_events()]
    assert "test.local" in names
    assert "test.foreign" in names
