"""Targeted constant/copy propagation tests."""

import pytest

from repro.ir import instructions as ins
from repro.ir.instructions import Opcode
from repro.opt import propagate_constants


def _opcodes(code):
    return [i.opcode for i in code]


def test_constant_binop_folds_to_li():
    code = [ins.li("a", 6), ins.li("b", 7), ins.mul("p", "a", "b")]
    out = propagate_constants(code)
    assert out[-1].opcode is Opcode.LI
    assert out[-1].imm == 42


def test_folding_chains():
    code = [ins.li("a", 1), ins.li("b", 2), ins.add("c", "a", "b"),
            ins.add("d", "c", "c")]
    out = propagate_constants(code)
    assert out[-1].imm == 6


def test_copy_propagation_rewrites_uses():
    code = [ins.mov("b", "a"), ins.add("c", "b", "b")]
    out = propagate_constants(code)
    assert out[-1].regs == ("c", "a", "a")


def test_copy_chain_follows_to_root():
    code = [ins.mov("b", "a"), ins.mov("c", "b"), ins.neg("d", "c")]
    out = propagate_constants(code)
    assert out[-1].regs == ("d", "a")


def test_copy_invalidated_by_source_redefinition():
    code = [ins.mov("b", "a"), ins.li("a", 9), ins.neg("d", "b")]
    out = propagate_constants(code)
    # b still holds the OLD a: the use must NOT be rewritten to a
    assert out[-1].regs == ("d", "b")


def test_mov_of_constant_becomes_li():
    code = [ins.li("a", 5), ins.mov("b", "a")]
    out = propagate_constants(code)
    assert out[-1].opcode is Opcode.LI and out[-1].imm == 5


def test_neg_of_constant_folds():
    code = [ins.li("a", 4), ins.neg("n", "a")]
    out = propagate_constants(code)
    assert out[-1].opcode is Opcode.LI and out[-1].imm == -4


def test_load_invalidates_destination():
    code = [ins.li("v", 3), ins.load("v", "base", 0),
            ins.add("w", "v", "v")]
    out = propagate_constants(code)
    assert out[-1].opcode is Opcode.ADD  # v no longer constant


def test_call_clears_environment():
    code = [ins.li("a", 2), ins.call("f"), ins.add("b", "a", "a")]
    out = propagate_constants(code)
    assert out[-1].opcode is Opcode.ADD  # a unknown after the call


def test_div_by_zero_not_folded():
    code = [ins.li("a", 3), ins.li("z", 0),
            ins.binop(Opcode.DIV, "q", "a", "z")]
    out = propagate_constants(code)
    assert out[-1].opcode is Opcode.DIV


def test_shift_folding_masks_count():
    code = [ins.li("a", 1), ins.li("s", 65),
            ins.binop(Opcode.SHL, "r", "a", "s")]
    out = propagate_constants(code)
    assert out[-1].imm == 2  # 65 & 63 == 1


def test_float_folding():
    code = [ins.li("x", 1.5), ins.li("y", 0.5),
            ins.binop(Opcode.FDIV, "q", "x", "y")]
    out = propagate_constants(code)
    assert out[-1].imm == 3.0


def test_store_operands_rewritten_via_copies():
    code = [ins.mov("v", "a"), ins.store("v", "base", 1)]
    out = propagate_constants(code)
    assert out[-1].regs == ("a", "base")


def test_branch_operands_rewritten():
    from repro.ir import Cond
    code = [ins.mov("x", "a"), ins.br(Cond.EQ, "x", "x", "t", "f")]
    out = propagate_constants(code)
    assert out[-1].regs == ("a", "a")
    assert out[-1].target == "t"
