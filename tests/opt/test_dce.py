"""Targeted dead-code elimination tests."""

from repro.ir import instructions as ins
from repro.ir.instructions import Opcode
from repro.opt import ALL_REGISTERS, eliminate_dead_code


def test_nops_always_removed():
    code = [ins.nop(), ins.li("a", 1), ins.nop()]
    out = eliminate_dead_code(code)
    assert all(i.opcode is not Opcode.NOP for i in out)
    assert len(out) == 1


def test_shadowed_definition_removed_with_all_live():
    code = [ins.li("a", 1), ins.li("a", 2)]
    out = eliminate_dead_code(code, live_out=ALL_REGISTERS)
    assert len(out) == 1
    assert out[0].imm == 2


def test_definition_read_before_shadowing_kept():
    code = [ins.li("a", 1), ins.add("b", "a", "a"), ins.li("a", 2)]
    out = eliminate_dead_code(code)
    assert len(out) == 3


def test_self_referencing_redefinition_kept():
    code = [ins.li("a", 1), ins.add("a", "a", "a")]
    out = eliminate_dead_code(code)
    assert len(out) == 2  # the add reads a before redefining it


def test_explicit_liveness_prunes_unobserved():
    code = [ins.li("a", 1), ins.li("b", 2)]
    out = eliminate_dead_code(code, live_out=["a"])
    assert len(out) == 1
    assert out[0].regs == ("a",)


def test_stores_never_removed():
    code = [ins.li("v", 1), ins.store("v", "base", 0)]
    out = eliminate_dead_code(code, live_out=[])
    assert any(i.opcode is Opcode.STORE for i in out)
    # and the value feeding the store stays live
    assert len(out) == 2


def test_dead_load_removed_with_explicit_liveness():
    code = [ins.load("t", "base", 0)]
    out = eliminate_dead_code(code, live_out=[])
    assert out == []


def test_load_kept_when_all_registers_live():
    code = [ins.load("t", "base", 0)]
    assert len(eliminate_dead_code(code)) == 1


def test_call_keeps_everything_before_it():
    # 'a' is shadowed after the call, but the call may read it.
    code = [ins.li("a", 1), ins.call("f"), ins.li("a", 2)]
    out = eliminate_dead_code(code)
    assert len(out) == 3


def test_call_itself_always_kept():
    out = eliminate_dead_code([ins.call("f")], live_out=[])
    assert len(out) == 1


def test_chain_of_dead_computation_collapses():
    code = [ins.li("t1", 1), ins.add("t2", "t1", "t1"),
            ins.mul("t3", "t2", "t2"), ins.li("out", 9)]
    out = eliminate_dead_code(code, live_out=["out"])
    assert len(out) == 1
    assert out[0].regs == ("out",)
