"""Region-retranslation pipeline tests."""

import pytest

from repro.cfg import cfg_from_program
from repro.dbt import DBTConfig, TwoPhaseDBT
from repro.interp import Interpreter
from repro.ir import Cond, ProgramBuilder
from repro.opt import (MachineModel, extract_superblock,
                       main_path_instances, mean_speedup, optimize_region,
                       optimize_snapshot_regions)
from repro.profiles import EdgeKind, Region, RegionKind


def _loop_program():
    """A hot loop whose body has foldable constants and ILP."""
    pb = ProgramBuilder()
    with pb.function("main") as fb:
        (fb.block("entry")
           .li("i", 0).li("n", 500).li("one", 1).li("acc", 0)
           .jmp("head"))
        (fb.block("head")
           .li("c1", 10).li("c2", 32)
           .mul("k", "c1", "c2")        # foldable: k = 320
           .add("acc", "acc", "k")
           .mul("sq", "i", "i")         # independent of acc chain
           .add("acc", "acc", "sq")
           .add("i", "i", "one")
           .br(Cond.LT, "i", "n", taken="head", fall="done"))
        fb.block("done").halt()
    return pb.build()


@pytest.fixture
def optimized_snapshot():
    program = _loop_program()
    cfg, _ = cfg_from_program(program)
    dbt = TwoPhaseDBT(cfg, DBTConfig(threshold=20, pool_trigger_size=1))
    Interpreter(program, listener=dbt, step_limit=10**7).run()
    return program, cfg, dbt.snapshot()


def test_main_path_reaches_tail():
    region = Region(
        region_id=0, kind=RegionKind.LINEAR, members=[5, 6, 7, 8],
        internal_edges=[(0, 1, EdgeKind.TAKEN), (0, 2, EdgeKind.FALL),
                        (1, 3, EdgeKind.TAKEN), (2, 3, EdgeKind.TAKEN)],
        tail=3)
    path = main_path_instances(region)
    assert path[0] == 0
    assert path[-1] == 3


def test_main_path_single_block():
    region = Region(region_id=0, kind=RegionKind.LINEAR, members=[4],
                    tail=0)
    assert main_path_instances(region) == [0]


def test_superblock_extraction_drops_terminators(optimized_snapshot):
    program, cfg, snapshot = optimized_snapshot
    region = snapshot.regions[0]
    code = extract_superblock(program, region)
    assert code  # non-empty body
    assert all(not i.is_terminator for i in code)


def test_optimizer_finds_real_gains(optimized_snapshot):
    program, cfg, snapshot = optimized_snapshot
    reports = optimize_snapshot_regions(program, snapshot)
    assert reports
    loop_report = max(reports, key=lambda r: r.original_instructions)
    # the folded mul disappears and scheduling exploits the ILP
    assert loop_report.optimized_instructions <= \
        loop_report.original_instructions
    assert loop_report.scheduled_cycles < loop_report.sequential_cycles
    assert loop_report.speedup > 1.2


def test_report_arithmetic(optimized_snapshot):
    program, cfg, snapshot = optimized_snapshot
    report = optimize_region(program, snapshot.regions[0])
    assert report.instructions_removed == \
        report.original_instructions - report.optimized_instructions
    assert report.speedup == pytest.approx(
        report.sequential_cycles / report.scheduled_cycles)


def test_mean_speedup():
    from repro.opt import RegionOptimizationReport

    def rep(spec):
        return RegionOptimizationReport(
            region_id=0, original_instructions=10,
            optimized_instructions=10, sequential_cycles=spec,
            scheduled_cycles=10)

    assert mean_speedup([]) == 1.0
    assert mean_speedup([rep(20), rep(40)]) == pytest.approx(3.0)
    assert mean_speedup([rep(20), rep(40)], weights=[1.0, 0.0]) == \
        pytest.approx(2.0)


def test_narrow_machine_limits_speedup(optimized_snapshot):
    program, cfg, snapshot = optimized_snapshot
    wide = optimize_region(program, snapshot.regions[0],
                           MachineModel(width=8))
    narrow = optimize_region(program, snapshot.regions[0],
                             MachineModel(width=1))
    assert wide.scheduled_cycles <= narrow.scheduled_cycles
