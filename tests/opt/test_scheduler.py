"""Dependence-DAG and list-scheduler tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import instructions as ins
from repro.ir.instructions import Opcode
from repro.opt import (MachineModel, build_dag, list_schedule,
                       sequential_cycles)


class TestMachineModel:
    def test_default_latencies(self):
        machine = MachineModel()
        assert machine.latency(Opcode.ADD) == 1
        assert machine.latency(Opcode.MUL) == 3
        assert machine.latency(Opcode.FDIV) == 16

    def test_width_validated(self):
        with pytest.raises(ValueError):
            MachineModel(width=0)


class TestDAG:
    def test_raw_dependence(self):
        code = [ins.li("a", 1), ins.add("b", "a", "a")]
        dag = build_dag(code)
        assert 1 in dag.successors[0]

    def test_waw_dependence(self):
        code = [ins.li("a", 1), ins.li("a", 2)]
        dag = build_dag(code)
        assert 1 in dag.successors[0]

    def test_war_dependence(self):
        code = [ins.add("b", "a", "a"), ins.li("a", 2)]
        dag = build_dag(code)
        assert 1 in dag.successors[0]

    def test_independent_instructions_unordered(self):
        code = [ins.li("a", 1), ins.li("b", 2)]
        dag = build_dag(code)
        assert dag.edge_count() == 0

    def test_store_orders_memory(self):
        code = [ins.store("v", "p", 0), ins.load("x", "q", 0)]
        dag = build_dag(code)
        assert 1 in dag.successors[0]

    def test_loads_do_not_order_each_other(self):
        code = [ins.load("x", "p", 0), ins.load("y", "q", 0)]
        dag = build_dag(code)
        assert dag.edge_count() == 0

    def test_store_after_load_ordered(self):
        code = [ins.load("x", "p", 0), ins.store("v", "q", 0)]
        dag = build_dag(code)
        assert 1 in dag.successors[0]

    def test_call_is_barrier(self):
        code = [ins.li("a", 1), ins.call("f"), ins.li("b", 2)]
        dag = build_dag(code)
        assert 1 in dag.successors[0]
        assert 2 in dag.successors[1]


class TestListSchedule:
    def test_empty(self):
        schedule = list_schedule([])
        assert schedule.length == 0
        assert schedule.ilp == 0.0

    def test_independent_ops_pack_to_width(self):
        machine = MachineModel(width=2)
        code = [ins.li(f"r{i}", i) for i in range(4)]
        schedule = list_schedule(code, machine)
        assert schedule.length == 2
        assert sorted(schedule.issue_cycle) == [0, 0, 1, 1]

    def test_dependent_chain_serialises(self):
        code = [ins.li("a", 1), ins.add("b", "a", "a"),
                ins.add("c", "b", "b")]
        schedule = list_schedule(code, MachineModel(width=4))
        assert schedule.length == 3
        assert schedule.issue_cycle == [0, 1, 2]

    def test_latency_respected(self):
        code = [ins.mul("p", "a", "b"), ins.add("q", "p", "p")]
        schedule = list_schedule(code, MachineModel(width=4))
        # mul at 0 (latency 3) -> add at 3, completes at 4
        assert schedule.issue_cycle == [0, 3]
        assert schedule.length == 4

    def test_critical_path_prioritised(self):
        machine = MachineModel(width=1)
        # the fdiv heads a long chain: it must issue first
        code = [ins.li("x", 1),
                ins.binop(Opcode.FDIV, "d", "a", "b"),
                ins.add("e", "d", "d")]
        schedule = list_schedule(code, machine)
        assert schedule.issue_cycle[1] == 0

    def test_never_longer_than_sequential(self):
        code = [ins.li("a", 1), ins.mul("b", "a", "a"),
                ins.add("c", "b", "a"), ins.store("c", "base", 0)]
        schedule = list_schedule(code)
        assert schedule.length <= sequential_cycles(code)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(["li", "add", "mul", "load"]),
                    min_size=1, max_size=20),
           st.integers(1, 6))
    def test_schedule_invariants_random(self, kinds, width):
        code = []
        regs = ["r0", "r1", "r2"]
        for i, kind in enumerate(kinds):
            rd = regs[i % 3]
            rs = regs[(i + 1) % 3]
            if kind == "li":
                code.append(ins.li(rd, i))
            elif kind == "add":
                code.append(ins.add(rd, rs, rs))
            elif kind == "mul":
                code.append(ins.mul(rd, rs, rs))
            else:
                code.append(ins.load(rd, rs, 0))
        machine = MachineModel(width=width)
        schedule = list_schedule(code, machine)
        # every instruction issued exactly once, within bounds
        assert all(c >= 0 for c in schedule.issue_cycle)
        assert schedule.length <= sequential_cycles(code, machine)
        # no more than `width` instructions share a cycle
        from collections import Counter
        per_cycle = Counter(schedule.issue_cycle)
        assert max(per_cycle.values()) <= width
        # dependences respected: consumer issues after producer completes
        dag = build_dag(code)
        for src in range(len(code)):
            done = schedule.issue_cycle[src] + \
                machine.latency(code[src].opcode)
            for dst in dag.successors[src]:
                assert schedule.issue_cycle[dst] >= done
