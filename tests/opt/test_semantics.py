"""Semantic preservation: optimised code computes the same machine state.

The strongest check the optimiser gets — run the original and the
optimised straight-line sequence through the instruction interpreter and
compare every register and memory cell, over hypothesis-randomised
programs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import Interpreter
from repro.ir import BasicBlock, Function, Program
from repro.ir import instructions as ins
from repro.ir.instructions import Opcode
from repro.opt import eliminate_dead_code, propagate_constants

REGS = ["r0", "r1", "r2", "r3", "r4"]
ALU = [Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR,
       Opcode.XOR]


@st.composite
def straightline_programs(draw):
    """Random straight-line sequences over a small register pool.

    A reserved, never-redefined ``base`` register keeps every memory
    access in bounds; div/mod are excluded (fault-preservation is
    unit-tested separately).
    """
    code = [ins.li("base", 256)]
    length = draw(st.integers(3, 25))
    for _ in range(length):
        kind = draw(st.integers(0, 6))
        rd = draw(st.sampled_from(REGS))
        rs1 = draw(st.sampled_from(REGS))
        rs2 = draw(st.sampled_from(REGS))
        if kind == 0:
            code.append(ins.li(rd, draw(st.integers(-50, 50))))
        elif kind == 1:
            code.append(ins.mov(rd, rs1))
        elif kind == 2:
            code.append(ins.neg(rd, rs1))
        elif kind == 3:
            code.append(ins.binop(draw(st.sampled_from(ALU)), rd, rs1,
                                  rs2))
        elif kind == 4:
            code.append(ins.load(rd, "base", draw(st.integers(0, 31))))
        elif kind == 5:
            code.append(ins.store(rs1, "base", draw(st.integers(0, 31))))
        else:
            code.append(ins.nop())
    return code


def run_sequence(code):
    """Interpret a straight-line sequence; return (registers, memory)."""
    program = Program()
    fn = Function("main")
    fn.add_block(BasicBlock("entry", list(code) + [ins.halt()]))
    program.add_function(fn)
    interp = Interpreter(program)
    interp.run()
    return dict(interp.state.registers), list(interp.state.memory)


def assert_equivalent(original, optimized, check_registers=True):
    regs_a, mem_a = run_sequence(original)
    regs_b, mem_b = run_sequence(optimized)
    assert mem_a == mem_b
    if check_registers:
        # every register the original defines must agree (the optimised
        # code may skip registers it proved unobservable only when DCE
        # was given explicit liveness, which these tests never do)
        for reg, value in regs_a.items():
            assert regs_b.get(reg, 0) == value, reg


@settings(max_examples=120, deadline=None)
@given(straightline_programs())
def test_constant_propagation_preserves_semantics(code):
    assert_equivalent(code, propagate_constants(code))


@settings(max_examples=120, deadline=None)
@given(straightline_programs())
def test_dce_preserves_semantics(code):
    assert_equivalent(code, eliminate_dead_code(code))


@settings(max_examples=120, deadline=None)
@given(straightline_programs())
def test_full_pipeline_preserves_semantics(code):
    optimized = eliminate_dead_code(propagate_constants(code))
    assert_equivalent(code, optimized)
    assert len(optimized) <= len(code) + 0  # never grows


@settings(max_examples=60, deadline=None)
@given(straightline_programs())
def test_passes_are_idempotent(code):
    once = eliminate_dead_code(propagate_constants(code))
    twice = eliminate_dead_code(propagate_constants(once))
    assert_equivalent(once, twice)
    assert len(twice) <= len(once)


def test_division_fault_is_preserved():
    """A folding pass must not remove a guaranteed divide-by-zero."""
    from repro.ir import ExecutionError
    code = [ins.li("a", 1), ins.li("z", 0),
            ins.binop(Opcode.DIV, "q", "a", "z")]
    optimized = propagate_constants(code)
    # the div is NOT folded away
    assert any(i.opcode is Opcode.DIV for i in optimized)
    with pytest.raises(ExecutionError):
        run_sequence(optimized)
