"""CostTables: hoisted trace invariants must not move a single bit.

The shared-tables fast path only exists because its results are
*bit-identical* to the per-call estimator (the golden corpus is pinned
by SHA-256, so even a one-ulp drift would show).  These tests compare
breakdowns field for field with ``==`` on the raw floats — no
``approx`` anywhere.
"""

import numpy as np
import pytest

from repro.dbt import DBTConfig, MultiThresholdReplay, ReplayDBT
from repro.perfmodel import CostModel, CostTables, estimate_cost
from repro.perfmodel.tables import _LUT_CAP
from repro.stochastic import VecWalker, walk


def _exact_equal(a, b, label=""):
    assert (a.unoptimized, a.optimized, a.side_exits, a.translation,
            a.num_side_exits, a.optimized_fraction) == \
           (b.unoptimized, b.optimized, b.side_exits, b.translation,
            b.num_side_exits, b.optimized_fraction), label


def _sizes(cfg, seed=0):
    rng = np.random.RandomState(seed)
    return rng.randint(1, 12, size=cfg.num_nodes)


def test_tables_path_bitwise_equals_direct_path(nested_cfg, nested_trace):
    sizes = _sizes(nested_cfg)
    tables = CostTables(nested_trace, sizes)
    for threshold in (1, 5, 50, 500):
        tmap = ReplayDBT(nested_trace, nested_cfg,
                         DBTConfig(threshold=threshold)).translation_map()
        direct = estimate_cost(nested_trace, tmap, sizes)
        shared = estimate_cost(nested_trace, tmap, sizes, tables=tables)
        _exact_equal(direct, shared, f"threshold={threshold}")


def test_tables_bitwise_across_custom_costs(nested_cfg, nested_trace):
    sizes = _sizes(nested_cfg, seed=3)
    costs = CostModel(interp_cost=4.5, profile_overhead=1.25,
                      opt_cost=0.75)
    tables = CostTables(nested_trace, sizes, costs)
    tmap = ReplayDBT(nested_trace, nested_cfg,
                     DBTConfig(threshold=20)).translation_map()
    direct = estimate_cost(nested_trace, tmap, sizes, costs)
    shared = estimate_cost(nested_trace, tmap, sizes, costs, tables=tables)
    _exact_equal(direct, shared)


def test_from_batches_equals_from_trace(nested_cfg, nested_behavior):
    """Streaming construction == whole-trace construction, array for
    array, and the attached event index matches the lazy one."""
    sizes = _sizes(nested_cfg)
    walker = VecWalker(nested_cfg, nested_behavior, seed=9, chunk_steps=763)
    trace, tables = CostTables.from_batches(
        walker.run_batches(40_000), nested_cfg.num_nodes, sizes)
    whole = walk(nested_cfg, nested_behavior, max_steps=40_000, seed=9)
    expected = CostTables(whole, sizes)

    np.testing.assert_array_equal(trace.blocks, whole.blocks)
    np.testing.assert_array_equal(trace.taken, whole.taken)
    for field in ("blocks", "positions", "unopt_price", "opt_price",
                  "src", "codes"):
        np.testing.assert_array_equal(getattr(tables, field),
                                      getattr(expected, field), field)
    lazy = whole.events()
    built = trace.events()
    assert built.keys() == lazy.keys()
    for block in lazy:
        np.testing.assert_array_equal(built[block].steps,
                                      lazy[block].steps)


def test_from_batches_empty_stream():
    trace, tables = CostTables.from_batches(iter(()), 4, [1, 2, 3, 4])
    assert trace.num_steps == 0
    assert tables.num_steps == 0
    assert len(tables.codes) == 0


def test_edge_inside_lut_equals_isin(nested_cfg, nested_trace,
                                     monkeypatch):
    """The pair-code LUT and np.isin are the same set-membership test."""
    sizes = _sizes(nested_cfg)
    tables = CostTables(nested_trace, sizes)
    tmap = ReplayDBT(nested_trace, nested_cfg,
                     DBTConfig(threshold=5)).translation_map()
    assert tmap.internal_pairs  # the fixture trace must form regions
    lut = tables.edge_inside(tmap)
    assert lut.any()
    monkeypatch.setattr("repro.perfmodel.tables._LUT_CAP", 0)
    fallback = tables.edge_inside(tmap)
    np.testing.assert_array_equal(lut, fallback)
    assert _LUT_CAP >= 1 << 20  # the LUT covers every study-size CFG


def test_tables_reject_foreign_trace(nested_cfg, nested_trace,
                                     nested_behavior):
    sizes = _sizes(nested_cfg)
    other = walk(nested_cfg, nested_behavior, max_steps=1_000, seed=1)
    tables = CostTables(other, sizes)
    tmap = ReplayDBT(nested_trace, nested_cfg,
                     DBTConfig(threshold=5)).translation_map()
    with pytest.raises(ValueError):
        estimate_cost(nested_trace, tmap, sizes, tables=tables)


def test_tables_reject_wrong_sizes(nested_cfg, nested_trace):
    with pytest.raises(ValueError):
        CostTables(nested_trace, [1, 2, 3])


def test_measured_estimator_accepts_tables():
    """The derived-cost estimator is tables-blind too (bit-identical)."""
    from repro.cfg import cfg_from_program
    from repro.dbt import TwoPhaseDBT, translation_map_from_replay
    from repro.interp import Interpreter, TeeListener
    from repro.ir import branchy_prng
    from repro.perfmodel import estimate_cost_measured
    from repro.stochastic import TraceRecorder

    program = branchy_prng(iterations=2000)
    cfg, _ = cfg_from_program(program)
    recorder = TraceRecorder(program.num_blocks())
    dbt = TwoPhaseDBT(cfg, DBTConfig(threshold=100, pool_trigger_size=2))
    Interpreter(program, listener=TeeListener(recorder, dbt),
                step_limit=10**8).run()
    snapshot = dbt.snapshot()
    tmap = translation_map_from_replay(dbt)
    trace = recorder.trace()
    table = program.block_table()
    sizes = np.array([len(block) for _, block in table], dtype=float)

    direct = estimate_cost_measured(trace, tmap, program, cfg, snapshot)
    shared = estimate_cost_measured(trace, tmap, program, cfg, snapshot,
                                    tables=CostTables(trace, sizes,
                                                      CostModel()))
    _exact_equal(direct, shared)


def test_multireplay_maps_price_identically_under_tables(nested_cfg,
                                                         nested_trace):
    """The full sweep shape the harness runs: one tables object, many
    maps from a multi-threshold replay, both replay kernels."""
    sizes = _sizes(nested_cfg)
    thresholds = [5, 50, 500]
    tables = CostTables(nested_trace, sizes)
    sweeps = {k: MultiThresholdReplay(nested_trace, nested_cfg, thresholds,
                                      replay_kernel=k).run()
              for k in ("scalar", "batched")}
    for t in thresholds:
        per_kernel = []
        for kernel, sweep in sweeps.items():
            tmap = sweep.state(t).translation_map()
            direct = estimate_cost(nested_trace, tmap, sizes)
            shared = estimate_cost(nested_trace, tmap, sizes,
                                   tables=tables)
            _exact_equal(direct, shared, f"t={t} kernel={kernel}")
            per_kernel.append(shared)
        _exact_equal(*per_kernel, label=f"t={t} across kernels")
