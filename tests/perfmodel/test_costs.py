"""Cost-model parameter validation tests."""

import pytest

from repro.perfmodel import DEFAULT_COSTS, CostModel


def test_defaults_are_consistent():
    assert DEFAULT_COSTS.opt_cost <= DEFAULT_COSTS.interp_cost
    assert DEFAULT_COSTS.side_exit_penalty > 0
    assert DEFAULT_COSTS.translation_cost > DEFAULT_COSTS.interp_cost


def test_negative_cost_rejected():
    with pytest.raises(ValueError):
        CostModel(interp_cost=-1.0)
    with pytest.raises(ValueError):
        CostModel(translation_cost=-5.0)


def test_optimized_slower_than_interp_rejected():
    with pytest.raises(ValueError, match="slower"):
        CostModel(interp_cost=1.0, opt_cost=2.0)


def test_frozen():
    with pytest.raises(Exception):
        DEFAULT_COSTS.opt_cost = 0.0  # type: ignore[misc]
