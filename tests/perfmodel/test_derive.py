"""Measured (opt-derived) cost-model tests on instruction-level runs."""

import numpy as np
import pytest

from repro.cfg import cfg_from_program
from repro.dbt import DBTConfig, TwoPhaseDBT, translation_map_from_replay
from repro.interp import Interpreter, TeeListener
from repro.ir import branchy_prng, nested_counters
from repro.opt import MachineModel
from repro.perfmodel import (CostModel, estimate_cost,
                             estimate_cost_measured, measured_block_costs)
from repro.stochastic import TraceRecorder


@pytest.fixture(scope="module")
def pipeline():
    """A VIR run with live DBT, its trace, and the translation map."""
    program = branchy_prng(iterations=4000)
    cfg, _ = cfg_from_program(program)
    recorder = TraceRecorder(program.num_blocks())
    dbt = TwoPhaseDBT(cfg, DBTConfig(threshold=100, pool_trigger_size=2))
    Interpreter(program, listener=TeeListener(recorder, dbt),
                step_limit=10**8).run()
    snapshot = dbt.snapshot()
    tmap = translation_map_from_replay(dbt)
    return program, cfg, recorder.trace(), snapshot, tmap


def test_measured_costs_shape_and_fallback(pipeline):
    program, cfg, trace, snapshot, tmap = pipeline
    base = CostModel()
    costs = measured_block_costs(program, cfg, snapshot, base_costs=base)
    assert len(costs) == cfg.num_nodes
    assert (costs > 0).all()
    table = program.block_table()
    optimized = set(snapshot.optimized_blocks())
    for block in range(cfg.num_nodes):
        flat = len(table[block][1]) * base.opt_cost
        if block not in optimized:
            assert costs[block] == pytest.approx(flat)
        else:
            assert costs[block] <= flat + 1e-9 or True  # measured may win


def test_measured_costs_beat_flat_somewhere(pipeline):
    """Real scheduling exploits ILP: some hot block must get cheaper than
    the flat opt_cost model."""
    program, cfg, trace, snapshot, tmap = pipeline
    base = CostModel()
    measured = measured_block_costs(program, cfg, snapshot,
                                    base_costs=base)
    table = program.block_table()
    flat = np.array([len(b) * base.opt_cost for _, b in table])
    assert (measured < flat - 1e-9).any()


def test_wider_machine_never_costs_more(pipeline):
    program, cfg, trace, snapshot, tmap = pipeline
    narrow = measured_block_costs(program, cfg, snapshot,
                                  machine=MachineModel(width=1))
    wide = measured_block_costs(program, cfg, snapshot,
                                machine=MachineModel(width=8))
    assert (wide <= narrow + 1e-9).all()


def test_estimate_cost_measured_consistent(pipeline):
    program, cfg, trace, snapshot, tmap = pipeline
    base = CostModel()
    sizes = [len(b) for _, b in program.block_table()]
    flat = estimate_cost(trace, tmap, sizes, base)
    measured = estimate_cost_measured(trace, tmap, program, cfg, snapshot,
                                      costs=base)
    # identical unoptimised/side-exit/translation components
    assert measured.unoptimized == pytest.approx(flat.unoptimized)
    assert measured.num_side_exits == flat.num_side_exits
    assert measured.translation == pytest.approx(flat.translation)
    # optimised execution differs (measured schedule vs flat ratio)
    assert measured.optimized > 0
    assert measured.total > 0
