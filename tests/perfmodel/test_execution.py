"""Cost-estimation tests against hand-computed values."""

import numpy as np
import pytest

from repro.dbt import TranslationMap
from repro.perfmodel import CostModel, estimate_cost, relative_performance
from repro.profiles import EdgeKind, Region, RegionKind
from repro.stochastic import NO_BRANCH, ExecutionTrace

COSTS = CostModel(interp_cost=2.0, profile_overhead=1.0, opt_cost=1.0,
                  side_exit_penalty=10.0, translation_cost=100.0)


def _trace():
    # 0 1 2 1 2 1 3 : block 1 branches (T to 2, F to 3)
    return ExecutionTrace.from_sequences(
        blocks=[0, 1, 2, 1, 2, 1, 3],
        taken=[NO_BRANCH, 1, NO_BRANCH, 1, NO_BRANCH, 0, NO_BRANCH],
        num_blocks=4)


SIZES = [2.0, 3.0, 4.0, 5.0]


def test_fully_unoptimized():
    tmap = TranslationMap(4, [], {})
    breakdown = estimate_cost(_trace(), tmap, SIZES, COSTS)
    # per-step: interp_cost*size + overhead
    expected = sum(2.0 * SIZES[b] + 1.0 for b in [0, 1, 2, 1, 2, 1, 3])
    assert breakdown.unoptimized == pytest.approx(expected)
    assert breakdown.optimized == 0.0
    assert breakdown.side_exits == 0.0
    assert breakdown.translation == 0.0
    assert breakdown.optimized_fraction == 0.0
    assert breakdown.total == pytest.approx(expected)


def test_optimized_with_side_exit():
    # Region covering 1->2 (taken path), formed before the trace begins.
    region = Region(
        region_id=0, kind=RegionKind.LOOP, members=[1, 2],
        internal_edges=[(0, 1, EdgeKind.TAKEN)],
        back_edges=[(1, EdgeKind.ALWAYS)],
        exit_edges=[(0, EdgeKind.FALL, 3)],
        tail=1)
    tmap = TranslationMap(4, [region], {1: 0, 2: 0})
    breakdown = estimate_cost(_trace(), tmap, SIZES, COSTS)
    # steps at blocks 1,2 are optimised (opt_at=0 <= position):
    opt_steps = [1, 2, 1, 2, 1]
    assert breakdown.optimized == pytest.approx(
        sum(1.0 * SIZES[b] for b in opt_steps))
    assert breakdown.unoptimized == pytest.approx(
        (2.0 * SIZES[0] + 1.0) + (2.0 * SIZES[3] + 1.0))
    # transitions from optimised blocks: 1->2 internal, 2->1 back,
    # 1->3 exit — but block 2 is the region tail, and 1->3 is... block 1
    # is not a tail, so 1->3 is a side exit.
    assert breakdown.num_side_exits == 1
    assert breakdown.side_exits == pytest.approx(10.0)
    # translation: members 1 and 2 -> sizes 3+4 times 100
    assert breakdown.translation == pytest.approx(700.0)
    assert breakdown.optimized_fraction == pytest.approx(5 / 7)


def test_tail_exit_is_free():
    region = Region(
        region_id=0, kind=RegionKind.LINEAR, members=[1, 2],
        internal_edges=[(0, 1, EdgeKind.TAKEN)],
        exit_edges=[(0, EdgeKind.FALL, 3), (1, EdgeKind.ALWAYS, 1)],
        tail=1)
    tmap = TranslationMap(4, [region], {1: 0, 2: 0})
    breakdown = estimate_cost(_trace(), tmap, SIZES, COSTS)
    # 2 -> 1 transitions leave through the tail (block 2): free.
    # 1 -> 3 is the only side exit.
    assert breakdown.num_side_exits == 1


def test_optimization_mid_trace():
    region = Region(region_id=0, kind=RegionKind.LINEAR, members=[1],
                    tail=0)
    # optimised from step 4: only the last execution of block 1 (position
    # 5) runs optimised.
    tmap = TranslationMap(4, [region], {1: 4})
    breakdown = estimate_cost(_trace(), tmap, SIZES, COSTS)
    assert breakdown.optimized == pytest.approx(1.0 * SIZES[1])


def test_size_mismatch_rejected():
    tmap = TranslationMap(4, [], {})
    with pytest.raises(ValueError, match="length"):
        estimate_cost(_trace(), tmap, [1.0, 2.0], COSTS)


def test_relative_performance():
    from repro.perfmodel.execution import CostBreakdown

    def bd(total):
        return CostBreakdown(unoptimized=total, optimized=0,
                             side_exits=0, translation=0,
                             num_side_exits=0, optimized_fraction=0)

    rel = relative_performance({1: bd(100.0), 5: bd(80.0), 10: bd(200.0)})
    assert rel[1] == 1.0
    assert rel[5] == pytest.approx(1.25)
    assert rel[10] == pytest.approx(0.5)


def test_relative_performance_missing_base():
    with pytest.raises(KeyError):
        relative_performance({}, base_threshold=1)
