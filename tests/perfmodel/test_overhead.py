"""Profiling-operation accounting tests (Figure 18 machinery)."""

import pytest

from repro.core import run_threshold_sweep
from repro.dbt import DBTConfig
from repro.perfmodel import (OverheadSeries, average_normalized,
                             overhead_series)
from repro.stochastic import walk


def test_normalized_series():
    series = OverheadSeries(train_ops=1000,
                            inip_ops={10: 5, 100: 50, 1000: 900})
    normalized = series.normalized()
    assert normalized == {10: 0.005, 100: 0.05, 1000: 0.9}


def test_zero_train_ops_rejected():
    with pytest.raises(ValueError):
        OverheadSeries(train_ops=0, inip_ops={}).normalized()


def test_average_normalized():
    a = OverheadSeries(train_ops=100, inip_ops={10: 10, 20: 30})
    b = OverheadSeries(train_ops=200, inip_ops={10: 40, 20: 100})
    avg = average_normalized([a, b])
    assert avg[10] == pytest.approx((0.1 + 0.2) / 2)
    assert avg[20] == pytest.approx((0.3 + 0.5) / 2)


def test_average_normalized_empty():
    assert average_normalized([]) == {}


def test_series_from_study(nested_cfg, nested_behavior):
    ref = walk(nested_cfg, nested_behavior, 30_000, seed=1)
    train = walk(nested_cfg, nested_behavior, 10_000, seed=2)
    study = run_threshold_sweep("demo", nested_cfg, ref, train,
                                thresholds=[5, 500],
                                base_config=DBTConfig(pool_trigger_size=3))
    series = overhead_series(study)
    assert series.train_ops == study.train_ops
    # tiny thresholds freeze early: far fewer ops than large ones
    assert series.inip_ops[5] < series.inip_ops[500]
    normalized = series.normalized()
    assert normalized[5] < normalized[500]
