"""Selective re-profiling (adaptive) tests."""

import math

import pytest

from repro.cfg import ControlFlowGraph
from repro.dbt import DBTConfig, ReplayDBT
from repro.phases import SelectiveReprofiler, compare_static_vs_adaptive
from repro.phases.continuous import AdaptiveEstimate
from repro.stochastic import ProgramBehavior, phased, steady, walk


def _phased_setup(steps=120_000, seed=5):
    cfg = ControlFlowGraph([
        (1,), (2,), (3, 4), (2,), (5, 6), (7,), (7,), (8, 1), ()])
    behavior = ProgramBehavior()
    behavior.set(2, steady(0.96))
    behavior.set(4, phased([(0.25, 0.9), (0.75, 0.1)], total_steps=steps))
    behavior.set(7, steady(0.0001))
    trace = walk(cfg, behavior, steps, seed=seed)
    inip = ReplayDBT(trace, cfg,
                     DBTConfig(threshold=50,
                               pool_trigger_size=3)).snapshot()
    return cfg, trace, inip


def test_estimate_timeline():
    est = AdaptiveEstimate(block_id=1,
                           segments=[(0, 0.9), (100, 0.2), (500, 0.6)])
    assert est.estimate_at(0) == 0.9
    assert est.estimate_at(99) == 0.9
    assert est.estimate_at(100) == 0.2
    assert est.estimate_at(10_000) == 0.6
    assert est.final_estimate == 0.6
    assert AdaptiveEstimate(block_id=2).estimate_at(5) is None


def test_adaptive_tracks_phase_change():
    cfg, trace, inip = _phased_setup()
    reprofiler = SelectiveReprofiler(threshold=50, deviation=0.2,
                                     window_steps=10_000)
    outcome = reprofiler.run(trace, inip)
    assert outcome.total_reprofiles >= 1
    assert outcome.extra_profiling_ops > 0
    # block 4's estimate must end near the late-phase probability
    est = outcome.estimates[4]
    assert est.final_estimate == pytest.approx(0.1, abs=0.1)


def test_adaptive_beats_static_on_phased_program():
    cfg, trace, inip = _phased_setup()
    result = compare_static_vs_adaptive(
        trace, inip, SelectiveReprofiler(threshold=50, deviation=0.2,
                                         window_steps=10_000),
        window_steps=10_000)
    assert not math.isnan(result["static_error"])
    assert result["adaptive_error"] < result["static_error"]
    assert result["reprofiles"] >= 1


def test_reprofile_cap_respected():
    cfg, trace, inip = _phased_setup()
    reprofiler = SelectiveReprofiler(threshold=10, deviation=0.01,
                                     window_steps=5_000, max_reprofiles=2)
    outcome = reprofiler.run(trace, inip)
    for est in outcome.estimates.values():
        assert est.reprofiles <= 2


def test_steady_program_needs_no_reprofiling():
    cfg = ControlFlowGraph([
        (1,), (2,), (3, 4), (2,), (5, 6), (7,), (7,), (8, 1), ()])
    behavior = ProgramBehavior()
    behavior.set(2, steady(0.9))
    behavior.set(4, steady(0.7))
    behavior.set(7, steady(0.0001))
    trace = walk(cfg, behavior, 80_000, seed=9)
    inip = ReplayDBT(trace, cfg,
                     DBTConfig(threshold=100,
                               pool_trigger_size=3)).snapshot()
    reprofiler = SelectiveReprofiler(threshold=100, deviation=0.25,
                                     window_steps=10_000)
    outcome = reprofiler.run(trace, inip)
    assert outcome.total_reprofiles == 0
    assert outcome.extra_profiling_ops == 0
