"""Phase-detector tests."""

import pytest

from repro.cfg import ControlFlowGraph
from repro.phases import PhaseDetector, windowed_rates
from repro.stochastic import ProgramBehavior, phased, steady, walk


def _cycle_cfg():
    # endless 2-block cycle with one branch (both targets in cycle)
    return ControlFlowGraph([(1,), (0, 0)])


def _trace(behavior, steps=40_000, seed=3):
    return walk(_cycle_cfg(), behavior, steps, seed=seed)


def test_windowed_rates_bins_events():
    behavior = ProgramBehavior()
    behavior.set(1, steady(0.8))
    trace = _trace(behavior, steps=10_000)
    rates = windowed_rates(trace, 1, window_steps=1000)
    assert rates.use.sum() == trace.use_counts()[1]
    assert rates.taken.sum() == trace.taken_counts()[1]
    probs = rates.probabilities(min_uses=10)
    import numpy as np
    assert np.nanmean(probs) == pytest.approx(0.8, abs=0.05)


def test_windowed_rates_bad_window():
    behavior = ProgramBehavior()
    behavior.set(1, steady(0.5))
    trace = _trace(behavior, steps=100)
    with pytest.raises(ValueError):
        windowed_rates(trace, 1, window_steps=0)


def test_detects_planted_phase_change():
    behavior = ProgramBehavior()
    behavior.set(1, phased([(0.5, 0.9), (0.5, 0.2)], total_steps=40_000))
    trace = _trace(behavior)
    detector = PhaseDetector(window_steps=4000, delta=0.3)
    changes = detector.detect_block(trace, 1)
    assert len(changes) == 1
    change = changes[0]
    assert change.old_probability > 0.8
    assert change.new_probability < 0.4
    assert abs(change.step - 20_000) <= 4000
    assert change.magnitude > 0.5


def test_no_false_positives_on_steady_branch():
    behavior = ProgramBehavior()
    behavior.set(1, steady(0.7))
    trace = _trace(behavior)
    detector = PhaseDetector(window_steps=4000, delta=0.2)
    assert detector.detect_block(trace, 1) == []


def test_detect_scans_all_branches():
    behavior = ProgramBehavior()
    behavior.set(1, phased([(0.5, 0.95), (0.5, 0.1)], total_steps=40_000))
    trace = _trace(behavior)
    detector = PhaseDetector(window_steps=4000, delta=0.3)
    changes = detector.detect(trace)
    assert set(changes) == {1}


def test_sparse_windows_skipped():
    behavior = ProgramBehavior()
    behavior.set(1, steady(0.5))
    trace = _trace(behavior, steps=200)
    detector = PhaseDetector(window_steps=10, delta=0.2, min_uses=1000)
    assert detector.detect_block(trace, 1) == []


def test_invalid_delta():
    with pytest.raises(ValueError):
        PhaseDetector(delta=0.0)
