"""Continuous trip-count profiling tests."""

import pytest

from repro.cfg import ControlFlowGraph
from repro.phases import (ContinuousTripCounter, compare_tripcount_predictors,
                          extract_trips, static_report)
from repro.phases.tripcount import TripSample
from repro.stochastic import (NO_BRANCH, ExecutionTrace, ProgramBehavior,
                              loopback_for_trip_count, phased, steady, walk)


def _latch_trace(outcomes):
    """Trace of a single self-looping latch with given outcome stream."""
    blocks = [0] * len(outcomes)
    return ExecutionTrace.from_sequences(blocks, outcomes, num_blocks=1)


class TestExtractTrips:
    def test_simple_sequences(self):
        # two loops: 3 trips then 2 trips (taken,taken,fall | taken,fall)
        trace = _latch_trace([1, 1, 0, 1, 0])
        samples = extract_trips(trace, 0)
        assert [s.trips for s in samples] == [3, 2]
        assert samples[0].step == 0
        assert samples[1].step == 3

    def test_unterminated_final_sequence_reported(self):
        trace = _latch_trace([1, 0, 1, 1])
        samples = extract_trips(trace, 0)
        assert [s.trips for s in samples] == [2, 2]

    def test_unknown_latch_gives_empty(self):
        empty = ExecutionTrace.from_sequences([], [], num_blocks=2)
        assert extract_trips(empty, 1) == []

    def test_immediate_exits(self):
        trace = _latch_trace([0, 0, 0])
        samples = extract_trips(trace, 0)
        assert [s.trips for s in samples] == [1, 1, 1]


class TestPredictors:
    def test_static_report_uses_initial_lp(self):
        samples = [TripSample(step=i, trips=100) for i in range(10)]
        # initial LP says "low trip count": every sample mispredicted
        report = static_report(samples, initial_lp=0.5)
        assert report.accuracy == 0.0
        # initial LP says high: all correct
        report = static_report(samples, initial_lp=0.995)
        assert report.accuracy == 1.0

    def test_static_report_without_profile(self):
        assert static_report([TripSample(0, 5)], None).samples == 0

    def test_continuous_adapts(self):
        # trips switch from 100 (high) to 3 (low): the EMA follows.
        samples = [TripSample(step=i, trips=100) for i in range(20)] + \
                  [TripSample(step=100 + i, trips=3) for i in range(60)]
        counter = ContinuousTripCounter(alpha=0.5)
        report = counter.evaluate(samples)
        assert report.accuracy > 0.85

    def test_continuous_alpha_validation(self):
        with pytest.raises(ValueError):
            ContinuousTripCounter(alpha=0.0)

    def test_compare_on_phase_changing_loop(self):
        """The Mcf scenario: loop high-trip early, low-trip later —
        continuous monitoring beats the frozen initial profile."""
        cfg = ControlFlowGraph([(1,), (1, 2), (1,)])  # latch 1, restart 2
        steps = 60_000
        behavior = ProgramBehavior()
        behavior.set(1, phased(
            [(0.1, loopback_for_trip_count(150.0)),
             (0.9, loopback_for_trip_count(3.0))], total_steps=steps))
        trace = walk(cfg, behavior, steps, seed=2)
        # initial profile saw the high-trip phase
        result = compare_tripcount_predictors(
            trace, latch=1, initial_lp=loopback_for_trip_count(150.0))
        assert result["loop_executions"] > 100
        assert result["continuous_accuracy"] > result["static_accuracy"]
        assert result["static_accuracy"] < 0.3
