"""Profile serialisation tests."""

import pytest

from repro.profiles import (BlockProfile, EdgeKind, ProfileSnapshot, Region,
                            RegionKind, load_snapshot, save_snapshot,
                            snapshot_from_dict, snapshot_to_dict)


def _snapshot():
    snapshot = ProfileSnapshot(label="INIP(100)", input_name="ref",
                               threshold=100, total_steps=5000,
                               profiling_ops=1234)
    snapshot.blocks[3] = BlockProfile(3, use=200, taken=150, frozen_at=77)
    snapshot.blocks[4] = BlockProfile(4, use=10, taken=0)
    snapshot.regions.append(Region(
        region_id=0, kind=RegionKind.LOOP, members=[3, 4],
        internal_edges=[(0, 1, EdgeKind.TAKEN)],
        back_edges=[(1, EdgeKind.ALWAYS)],
        exit_edges=[(0, EdgeKind.FALL, 5)],
        tail=1, formed_at=77))
    return snapshot


def test_dict_roundtrip():
    original = _snapshot()
    data = snapshot_to_dict(original)
    restored = snapshot_from_dict(data)
    assert snapshot_to_dict(restored) == data


def test_file_roundtrip(tmp_path):
    original = _snapshot()
    path = str(tmp_path / "profile.json")
    save_snapshot(original, path)
    restored = load_snapshot(path)
    assert snapshot_to_dict(restored) == snapshot_to_dict(original)


def test_version_check():
    data = snapshot_to_dict(_snapshot())
    data["version"] = 999
    with pytest.raises(ValueError, match="version"):
        snapshot_from_dict(data)


def test_loaded_snapshot_is_validated():
    data = snapshot_to_dict(_snapshot())
    data["blocks"][0]["taken"] = 10**9  # taken > use
    with pytest.raises(ValueError):
        snapshot_from_dict(data)


def test_avep_snapshot_roundtrip():
    snapshot = ProfileSnapshot(label="AVEP", input_name="ref",
                               threshold=None, total_steps=10)
    snapshot.blocks[0] = BlockProfile(0, use=10, taken=0)
    restored = snapshot_from_dict(snapshot_to_dict(snapshot))
    assert restored.threshold is None
    assert not restored.is_optimized
