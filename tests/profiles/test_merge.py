"""AVEP construction and profile-diff tests."""

import pytest

from repro.profiles import (avep_from_trace, diff_branch_probabilities,
                            hottest_blocks)
from repro.stochastic import NO_BRANCH, ExecutionTrace


def _trace():
    return ExecutionTrace.from_sequences(
        blocks=[0, 1, 2, 1, 2, 1, 3],
        taken=[NO_BRANCH, 1, NO_BRANCH, 1, NO_BRANCH, 0, NO_BRANCH],
        num_blocks=4)


def test_avep_counts():
    avep = avep_from_trace(_trace())
    assert avep.label == "AVEP"
    assert avep.threshold is None
    assert avep.blocks[1].use == 3
    assert avep.blocks[1].taken == 2
    assert avep.total_steps == 7
    # ops = sum(use) + sum(taken) = 7 + 2
    assert avep.profiling_ops == 9
    assert not avep.is_optimized


def test_avep_skips_unexecuted_blocks():
    trace = ExecutionTrace.from_sequences([0], [NO_BRANCH], num_blocks=5)
    avep = avep_from_trace(trace)
    assert set(avep.blocks) == {0}


def test_diff_branch_probabilities():
    left = avep_from_trace(_trace(), label="A")
    right = avep_from_trace(ExecutionTrace.from_sequences(
        blocks=[0, 1, 1, 1, 3],
        taken=[NO_BRANCH, 0, 0, 1, NO_BRANCH],
        num_blocks=4), label="B")
    deltas = diff_branch_probabilities(left, right)
    by_block = {d.block_id: d for d in deltas}
    assert by_block[1].bp_left == pytest.approx(2 / 3)
    assert by_block[1].bp_right == pytest.approx(1 / 3)
    assert by_block[1].abs_difference == pytest.approx(1 / 3)
    assert by_block[1].weight == 3  # right snapshot weighting
    # block 2 never took a branch: probability 0, absent on the right
    assert by_block[2].bp_left == 0.0
    assert by_block[2].bp_right is None
    assert by_block[2].abs_difference is None


def test_hottest_blocks():
    avep = avep_from_trace(_trace())
    top = hottest_blocks(avep, count=2)
    assert top[0][0] == 1 and top[0][1] == 3
    assert len(top) == 2
