"""Profile data-model tests."""

import pytest

from repro.profiles import (BlockProfile, EdgeKind, ProfileSnapshot, Region,
                            RegionKind)


class TestBlockProfile:
    def test_branch_probability(self):
        assert BlockProfile(0, use=10, taken=4).branch_probability == 0.4
        assert BlockProfile(0).branch_probability is None

    def test_frozen_flag(self):
        assert BlockProfile(0, frozen_at=5).is_frozen
        assert not BlockProfile(0).is_frozen


class TestEdgeKind:
    def test_probabilities(self):
        assert EdgeKind.TAKEN.probability(0.8) == 0.8
        assert EdgeKind.FALL.probability(0.8) == pytest.approx(0.2)
        assert EdgeKind.ALWAYS.probability(0.8) == 1.0

    def test_unprofiled_prior(self):
        assert EdgeKind.TAKEN.probability(None) == 0.5
        assert EdgeKind.FALL.probability(None) == 0.5
        assert EdgeKind.ALWAYS.probability(None) == 1.0


class TestRegion:
    def _region(self):
        return Region(
            region_id=0, kind=RegionKind.LOOP, members=[7, 8],
            internal_edges=[(0, 1, EdgeKind.TAKEN)],
            back_edges=[(1, EdgeKind.ALWAYS)],
            exit_edges=[(0, EdgeKind.FALL, 9)],
            tail=1)

    def test_accessors(self):
        region = self._region()
        assert region.entry_block == 7
        assert region.num_instances == 2
        region.validate()

    def test_instance_successors(self):
        region = self._region()
        succ0 = region.instance_successors(0)
        assert (EdgeKind.TAKEN, 1, None) in succ0
        assert (EdgeKind.FALL, None, 9) in succ0
        succ1 = region.instance_successors(1)
        assert (EdgeKind.ALWAYS, 0, None) in succ1

    @pytest.mark.parametrize("mutate", [
        lambda r: r.internal_edges.append((0, 9, EdgeKind.TAKEN)),
        lambda r: r.back_edges.append((5, EdgeKind.TAKEN)),
        lambda r: r.exit_edges.append((9, EdgeKind.TAKEN, 1)),
        lambda r: setattr(r, "tail", 7),
        lambda r: setattr(r, "members", []),
        lambda r: setattr(r, "back_edges", []),   # loop without back edges
    ])
    def test_validation_rejects_corruption(self, mutate):
        region = self._region()
        mutate(region)
        with pytest.raises(ValueError):
            region.validate()


class TestProfileSnapshot:
    def _snapshot(self):
        snapshot = ProfileSnapshot(label="INIP(5)", input_name="ref",
                                   threshold=5)
        snapshot.blocks[1] = BlockProfile(1, use=10, taken=7, frozen_at=3)
        snapshot.blocks[2] = BlockProfile(2, use=4, taken=0)
        snapshot.regions.append(Region(
            region_id=0, kind=RegionKind.LINEAR, members=[1], tail=0))
        return snapshot

    def test_queries(self):
        snapshot = self._snapshot()
        assert snapshot.branch_probability(1) == 0.7
        assert snapshot.branch_probability(99) is None
        assert snapshot.block_frequency(2) == 4
        assert snapshot.block_frequency(99) == 0
        assert snapshot.is_optimized
        assert snapshot.optimized_blocks() == {1: snapshot.regions}

    def test_region_kind_filters(self):
        snapshot = self._snapshot()
        assert len(snapshot.linear_regions()) == 1
        assert len(snapshot.loop_regions()) == 0

    def test_validation_catches_taken_above_use(self):
        snapshot = self._snapshot()
        snapshot.blocks[1] = BlockProfile(1, use=2, taken=5)
        with pytest.raises(ValueError, match="exceeds"):
            snapshot.validate()

    def test_validation_catches_key_mismatch(self):
        snapshot = self._snapshot()
        snapshot.blocks[9] = BlockProfile(1, use=1)
        with pytest.raises(ValueError, match="key"):
            snapshot.validate()
