"""Static-profile estimation tests."""

import numpy as np
import pytest

from repro.cfg import ControlFlowGraph, find_loops
from repro.profiles import avep_from_trace
from repro.staticpred import (compare_static_to_avep, static_profile,
                              static_snapshot)
from repro.stochastic import ProgramBehavior, steady, walk


def test_static_profile_structure(nested_cfg):
    profile = static_profile(nested_cfg)
    assert set(profile.branch_probabilities) == \
        set(nested_cfg.branch_nodes())
    assert len(profile.frequencies) == nested_cfg.num_nodes
    assert (profile.frequencies >= 0).all()
    # loop blocks estimated hotter than straight-line blocks
    assert profile.frequencies[2] > profile.frequencies[0]


def test_probabilities_clamped(nested_cfg):
    profile = static_profile(nested_cfg)
    for p in profile.branch_probabilities.values():
        assert 0.01 <= p <= 0.99


def test_static_snapshot_is_valid_profile(nested_cfg):
    snapshot = static_snapshot(nested_cfg)
    snapshot.validate()
    assert snapshot.label == "STATIC"
    hottest = max(snapshot.blocks.values(), key=lambda b: b.use)
    # the inner-loop body carries the most static weight
    assert hottest.block_id in (2, 3)


def test_unconditional_cycle_falls_back_to_flat():
    cfg = ControlFlowGraph([(1,), (0,)])  # 2-cycle, no branches
    profile = static_profile(cfg)
    assert np.allclose(profile.frequencies, 1.0)


def test_static_estimator_tracks_loopy_behaviour(nested_cfg):
    """On loop-dominated stochastic code whose behaviour matches the
    heuristics' assumptions, the static Sd.BP is small."""
    behavior = ProgramBehavior()
    behavior.set(2, steady(0.95))   # loops loop: heuristics are right
    behavior.set(4, steady(0.5))
    behavior.set(7, steady(0.01))
    trace = walk(nested_cfg, behavior, 60_000, seed=4)
    avep = avep_from_trace(trace)
    result = compare_static_to_avep(nested_cfg, avep)
    assert result.sd_bp is not None
    assert result.sd_bp < 0.2


def test_static_estimator_fails_on_biased_diamonds(nested_cfg):
    """Data-dependent diamonds defeat structural heuristics entirely."""
    behavior = ProgramBehavior()
    behavior.set(2, steady(0.95))
    behavior.set(4, steady(0.98))   # heuristics predict ~0.5
    behavior.set(7, steady(0.01))
    trace = walk(nested_cfg, behavior, 60_000, seed=5)
    avep = avep_from_trace(trace)
    result = compare_static_to_avep(nested_cfg, avep)
    # the diamond's weight drags the mismatch up
    assert result.bp_mismatch > 0.0


def test_static_worse_than_initial_profile_on_suite():
    """The study's spectrum: static < INIP(T) in accuracy."""
    from repro.dbt import DBTConfig, ReplayDBT
    from repro.core import compare_inip_to_avep
    from repro.workloads import get_benchmark

    bench = get_benchmark("gzip")
    bench.run_steps = 150_000
    trace = bench.trace("ref")
    avep = avep_from_trace(trace)
    loops = bench.loop_forest()
    static_result = compare_static_to_avep(bench.cfg, avep, loops=loops)
    inip = ReplayDBT(trace, bench.cfg, DBTConfig(threshold=200),
                     loops=loops).snapshot()
    inip_result = compare_inip_to_avep(bench.cfg, inip, avep)
    assert static_result.sd_bp > inip_result.sd_bp
