"""Static-prediction heuristic tests."""

import pytest

from repro.cfg import ControlFlowGraph, cfg_from_program, find_loops
from repro.ir import Cond, ProgramBuilder
from repro.staticpred import (dempster_shafer, estimate_all_branches,
                              estimate_branch)
from repro.staticpred.heuristics import (LOOP_BRANCH_PROB,
                                         RETURN_NOT_TAKEN,
                                         call_heuristic,
                                         guard_heuristic,
                                         loop_branch_heuristic,
                                         loop_exit_heuristic,
                                         return_heuristic,
                                         store_heuristic)


@pytest.fixture
def latch_cfg():
    """0 -> 1(header) -> 2(latch: taken->1, fall->3 exit) ; 3 exit."""
    return ControlFlowGraph([(1,), (2,), (1, 3), ()])


class TestLoopHeuristics:
    def test_back_edge_predicted_taken(self, latch_cfg):
        loops = find_loops(latch_cfg)
        assert loop_branch_heuristic(latch_cfg, loops, None, 2) == \
            LOOP_BRANCH_PROB

    def test_back_edge_on_fall_side(self):
        cfg = ControlFlowGraph([(1,), (2,), (3, 1), ()])
        loops = find_loops(cfg)
        assert loop_branch_heuristic(cfg, loops, None, 2) == \
            pytest.approx(1.0 - LOOP_BRANCH_PROB)

    def test_abstains_outside_loops(self, diamond_cfg):
        loops = find_loops(diamond_cfg)
        assert loop_branch_heuristic(diamond_cfg, loops, None, 1) is None

    def test_loop_exit_prefers_staying(self, nested_cfg):
        loops = find_loops(nested_cfg)
        # node 2: taken stays in the inner loop, fall leaves it
        value = loop_exit_heuristic(nested_cfg, loops, None, 2)
        assert value is not None and value > 0.5


class TestReturnHeuristic:
    def test_exit_successor_avoided(self, latch_cfg):
        loops = find_loops(latch_cfg)
        assert return_heuristic(latch_cfg, loops, None, 2) == \
            pytest.approx(1.0 - RETURN_NOT_TAKEN)

    def test_abstains_when_both_exit(self):
        cfg = ControlFlowGraph([(1, 2), (), ()])
        loops = find_loops(cfg)
        assert return_heuristic(cfg, loops, None, 0) is None


class TestIRHeuristics:
    def _program(self):
        pb = ProgramBuilder()
        with pb.function("helper") as fb:
            fb.block("entry").ret()
        with pb.function("main") as fb:
            (fb.block("entry")
               .br(Cond.EQ, "a", "b", taken="with_call", fall="with_store"))
            fb.block("with_call").call("helper").jmp("done")
            fb.block("with_store").store("a", "b", 0).jmp("done")
            fb.block("done").halt()
        return pb.build()

    def test_call_and_store_and_guard(self):
        program = self._program()
        cfg, ids = cfg_from_program(program)
        loops = find_loops(cfg)
        entry = program.block_ids()[("main", "entry")]
        # taken side calls -> avoided; fall side stores -> avoided; both
        # apply, pulling in opposite directions.
        assert call_heuristic(cfg, loops, program, entry) is not None
        assert store_heuristic(cfg, loops, program, entry) is not None
        assert guard_heuristic(cfg, loops, program, entry) is not None

    def test_ir_heuristics_abstain_without_program(self, latch_cfg):
        loops = find_loops(latch_cfg)
        assert call_heuristic(latch_cfg, loops, None, 2) is None
        assert store_heuristic(latch_cfg, loops, None, 2) is None
        assert guard_heuristic(latch_cfg, loops, None, 2) is None


class TestDempsterShafer:
    def test_empty_is_prior(self):
        assert dempster_shafer([]) == 0.5

    def test_single_estimate_passes_through(self):
        assert dempster_shafer([0.88]) == pytest.approx(0.88)

    def test_agreement_strengthens(self):
        fused = dempster_shafer([0.8, 0.8])
        assert fused > 0.8
        assert fused == pytest.approx(0.64 / (0.64 + 0.04))

    def test_disagreement_cancels(self):
        assert dempster_shafer([0.8, 0.2]) == pytest.approx(0.5)

    def test_order_independent(self):
        a = dempster_shafer([0.88, 0.28, 0.66])
        b = dempster_shafer([0.66, 0.88, 0.28])
        assert a == pytest.approx(b)

    def test_result_stays_in_unit_interval(self):
        for estimates in ([0.99, 0.99, 0.99], [0.01, 0.01], [0.5] * 5):
            assert 0.0 <= dempster_shafer(estimates) <= 1.0


class TestEstimateAll:
    def test_every_branch_estimated(self, nested_cfg):
        loops = find_loops(nested_cfg)
        estimates = estimate_all_branches(nested_cfg, loops)
        assert set(estimates) == set(nested_cfg.branch_nodes())
        for estimate in estimates.values():
            assert 0.0 <= estimate.probability <= 1.0

    def test_outer_latch_fuses_agreeing_heuristics(self, nested_cfg):
        loops = find_loops(nested_cfg)
        # node 7: taken exits the program, fall returns to the outer
        # header — loop-branch, loop-exit and return heuristics all agree
        # the branch is not taken, fusing far below any single estimate.
        estimate = estimate_branch(nested_cfg, loops, None, 7)
        assert estimate.probability < 1.0 - LOOP_BRANCH_PROB
        assert "loop_branch_heuristic" in estimate.applied
        assert "loop_exit_heuristic" in estimate.applied
        assert "return_heuristic" in estimate.applied

    def test_inner_header_uses_loop_exit(self, nested_cfg):
        loops = find_loops(nested_cfg)
        estimate = estimate_branch(nested_cfg, loops, None, 2)
        assert estimate.probability == pytest.approx(0.8)
        assert estimate.applied == ["loop_exit_heuristic"]
