"""Branch-behaviour model tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stochastic import (BranchBehavior, Phase, ProgramBehavior,
                              drifting, loopback_for_trip_count, phased,
                              steady, trip_count_for_loopback, warmup)


class TestConstruction:
    def test_steady(self):
        b = steady(0.25)
        assert b.steady_p == 0.25
        assert b.probability(0, 0) == 0.25
        assert b.probability(10**9, 10**6) == 0.25

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            Phase(until=-1, p=0.5)
        with pytest.raises(ValueError):
            Phase(until=10, p=1.5)

    def test_behavior_requires_infinite_final_phase(self):
        with pytest.raises(ValueError, match="infinity"):
            BranchBehavior(phases=(Phase(100, 0.5),))

    def test_behavior_requires_increasing_phases(self):
        with pytest.raises(ValueError, match="increasing"):
            BranchBehavior(phases=(Phase(100, 0.5), Phase(50, 0.2),
                                   Phase(math.inf, 0.3)))

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            BranchBehavior(phases=())

    def test_phased_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum"):
            phased([(0.5, 0.9), (0.4, 0.1)], 1000)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            BranchBehavior(phases=(Phase(math.inf, 0.5),), warmup_uses=-1)


class TestSchedules:
    def test_phased_lookup(self):
        b = phased([(0.3, 0.9), (0.7, 0.2)], total_steps=1000)
        assert b.probability(0, 100) == 0.9
        assert b.probability(299, 100) == 0.9
        assert b.probability(300, 100) == 0.2
        assert b.probability(999_999, 100) == 0.2
        assert b.change_steps() == [300.0]

    def test_warmup_uses_local_clock(self):
        b = warmup(5, p_init=0.1, p_steady=0.9)
        assert b.probability(10**6, 0) == 0.1    # first use, late in run
        assert b.probability(10**6, 4) == 0.1
        assert b.probability(0, 5) == 0.9        # sixth use, early in run

    def test_drifting_is_monotonic(self):
        b = drifting(0.2, 0.8, total_steps=800, segments=8)
        probs = [b.probability(s, 10**6) for s in range(0, 800, 100)]
        assert probs == sorted(probs)
        assert probs[0] < 0.3 and probs[-1] > 0.7

    def test_drifting_validation(self):
        with pytest.raises(ValueError):
            drifting(0.2, 0.8, 100, segments=0)

    def test_mean_probability_weights_phases(self):
        b = phased([(0.25, 1.0), (0.75, 0.0)], total_steps=1000)
        assert b.mean_probability(1000) == pytest.approx(0.25)
        assert b.mean_probability(250) == pytest.approx(1.0)
        assert b.mean_probability(500) == pytest.approx(0.5)

    def test_mean_probability_degenerate(self):
        assert steady(0.4).mean_probability(0) == 0.4


class TestTripCountRelation:
    def test_known_values(self):
        assert loopback_for_trip_count(1) == 0.0
        assert loopback_for_trip_count(10) == pytest.approx(0.9)
        assert loopback_for_trip_count(50) == pytest.approx(0.98)
        assert trip_count_for_loopback(0.9) == pytest.approx(10.0)
        assert trip_count_for_loopback(1.0) == math.inf

    def test_trip_count_below_one_rejected(self):
        with pytest.raises(ValueError):
            loopback_for_trip_count(0.5)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(1.0, 10_000.0))
    def test_roundtrip(self, trip_count):
        lp = loopback_for_trip_count(trip_count)
        assert 0.0 <= lp < 1.0
        assert trip_count_for_loopback(lp) == pytest.approx(trip_count,
                                                            rel=1e-9)


class TestProgramBehavior:
    def test_default_created_lazily(self):
        pb = ProgramBehavior(default_p=0.3)
        assert pb.behavior_of(7).steady_p == 0.3
        assert 7 in pb.branches

    def test_set_and_steady_probabilities(self):
        pb = ProgramBehavior()
        pb.set(1, steady(0.8))
        pb.set(2, phased([(0.5, 0.2), (0.5, 0.6)], 100))
        assert pb.steady_probabilities() == {1: 0.8, 2: 0.6}
