"""Execution-trace structure tests."""

import numpy as np
import pytest

from repro.interp import Interpreter
from repro.stochastic import (NO_BRANCH, ExecutionTrace, TraceError,
                              TraceRecorder)


def _tiny_trace():
    # blocks: 0 1 0 1 2 ; block 1 is a branch (T, F), others plain.
    return ExecutionTrace.from_sequences(
        blocks=[0, 1, 0, 1, 2],
        taken=[NO_BRANCH, 1, NO_BRANCH, 0, NO_BRANCH],
        num_blocks=3)


def test_counts():
    trace = _tiny_trace()
    assert list(trace.use_counts()) == [2, 2, 1]
    assert list(trace.taken_counts()) == [0, 1, 0]
    assert list(trace.branch_blocks()) == [1]
    assert trace.num_steps == len(trace) == 5


def test_events_index():
    trace = _tiny_trace()
    events = trace.events()
    assert list(events[1].steps) == [1, 3]
    assert list(events[1].taken_prefix) == [0, 1, 1]
    assert events[1].use == 2
    assert events[1].taken == 1
    assert events[0].taken == 0


def test_events_prefix_queries():
    trace = _tiny_trace()
    ev = trace.events()[1]
    assert ev.use_before(0) == 0
    assert ev.use_before(2) == 1
    assert ev.use_before(4) == 2
    assert ev.taken_before(1) == 0
    assert ev.taken_before(2) == 1
    assert ev.taken_before(4) == 1
    assert ev.step_of_use(1) == 1
    assert ev.step_of_use(2) == 3
    assert ev.step_of_use(3) is None
    assert ev.step_of_use(0) is None


def test_edge_counts():
    trace = _tiny_trace()
    edges = trace.edge_counts()
    assert edges[(0, 1)] == 2
    assert edges[(1, 0)] == 1
    assert edges[(1, 2)] == 1


def test_empty_trace():
    trace = ExecutionTrace.from_sequences([], [], num_blocks=4)
    assert trace.num_steps == 0
    assert trace.edge_counts() == {}
    assert list(trace.use_counts()) == [0, 0, 0, 0]


def test_validation():
    with pytest.raises(TraceError):
        ExecutionTrace.from_sequences([0, 5], [NO_BRANCH, NO_BRANCH],
                                      num_blocks=3)
    with pytest.raises(TraceError):
        ExecutionTrace(np.zeros(3, np.int32), np.zeros(2, np.int8), 1)


def test_save_load_roundtrip(tmp_path):
    trace = _tiny_trace()
    path = str(tmp_path / "trace.npz")
    trace.save(path)
    loaded = ExecutionTrace.load(path)
    assert np.array_equal(loaded.blocks, trace.blocks)
    assert np.array_equal(loaded.taken, trace.taken)
    assert loaded.num_blocks == trace.num_blocks


def test_load_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        ExecutionTrace.load(str(tmp_path / "nope.npz"))


def test_recorder_matches_interpreter_counts(loop_program):
    recorder = TraceRecorder(loop_program.num_blocks())
    interp = Interpreter(loop_program, listener=recorder)
    result = interp.run()
    trace = recorder.trace()
    assert trace.num_steps == result.blocks_executed
    loop_id = interp.block_id("main", "loop")
    assert trace.use_counts()[loop_id] == 5
    assert trace.taken_counts()[loop_id] == 4


def test_use_counts_match_event_index(nested_trace):
    use = nested_trace.use_counts()
    events = nested_trace.events()
    for block, ev in events.items():
        assert use[block] == ev.use
    assert use.sum() == nested_trace.num_steps


class TestValidateAgainstCFG:
    def _cfg(self):
        from repro.cfg import ControlFlowGraph
        return ControlFlowGraph([(1,), (1, 2), ()])

    def test_legal_trace_passes(self):
        from repro.stochastic import walk, ProgramBehavior, steady
        cfg = self._cfg()
        behavior = ProgramBehavior()
        behavior.set(1, steady(0.9))
        trace = walk(cfg, behavior, 500, seed=1)
        trace.validate_against_cfg(cfg)  # no exception

    def test_block_count_mismatch(self):
        trace = ExecutionTrace.from_sequences([0], [NO_BRANCH],
                                              num_blocks=5)
        with pytest.raises(TraceError, match="blocks"):
            trace.validate_against_cfg(self._cfg())

    def test_illegal_transition(self):
        # 0 must fall through to 1, not jump to 2... encode 0 -> 2
        trace = ExecutionTrace.from_sequences(
            [0, 2], [NO_BRANCH, NO_BRANCH], num_blocks=3)
        with pytest.raises(TraceError, match="fall through"):
            trace.validate_against_cfg(self._cfg())

    def test_wrong_branch_direction(self):
        # branch 1 taken must go to 1 (self), recorded going to 2
        trace = ExecutionTrace.from_sequences(
            [0, 1, 2], [NO_BRANCH, 1, NO_BRANCH], num_blocks=3)
        with pytest.raises(TraceError, match="outcome"):
            trace.validate_against_cfg(self._cfg())

    def test_missing_branch_outcome(self):
        trace = ExecutionTrace.from_sequences(
            [0, 1], [NO_BRANCH, NO_BRANCH], num_blocks=3)
        with pytest.raises(TraceError, match="without an"):
            trace.validate_against_cfg(self._cfg())

    def test_spurious_outcome_on_plain_block(self):
        trace = ExecutionTrace.from_sequences([0], [1], num_blocks=3)
        with pytest.raises(TraceError, match="non-branch"):
            trace.validate_against_cfg(self._cfg())

    def test_exit_must_be_last(self):
        trace = ExecutionTrace.from_sequences(
            [2, 0], [NO_BRANCH, NO_BRANCH], num_blocks=3)
        with pytest.raises(TraceError, match="exit"):
            trace.validate_against_cfg(self._cfg())
