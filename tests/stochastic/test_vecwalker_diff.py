"""Differential wall: the vector kernel must equal the scalar oracle.

Every test here asserts the same contract from a different angle: for
the same (CFG, behaviour, seed), :class:`VecWalker` produces an event
stream byte-identical to :class:`CFGWalker` — same blocks, same branch
outcomes, same counter tables, same per-block event index, same replay
regions — regardless of chunk size or which vectorized fast path the
input happens to exercise.

The hypothesis tests fuzz arbitrary CFG shapes and behaviour mixes; the
named tests pin the structural edge cases (chunk boundaries at 1 /
prime / beyond the run length, warm-up expiry mid-chunk, phase changes
mid-window, single-successor cycles, immediate exits, start overrides).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import ControlFlowGraph
from repro.dbt import DBTConfig, MultiThresholdReplay, ReplayDBT
from repro.stochastic import (CFGWalker, ProgramBehavior, VecWalker,
                              assemble_trace, drifting,
                              numpy_uniform_stream, phased, steady, vec_walk,
                              warmup)
from repro.stochastic.trace import EventIndexBuilder

# Chunk sizes straddling every interesting boundary: degenerate (1),
# prime (so chunk edges never align with loop periods), and larger than
# any run these tests record.
CHUNKS = (1, 13, 4096, 10**6)


def scalar_trace(cfg, behavior, steps, seed, start=None):
    return CFGWalker(cfg, behavior, seed=seed).run(steps, start=start)


def vector_trace(cfg, behavior, steps, seed, chunk, start=None):
    walker = VecWalker(cfg, behavior, seed=seed, chunk_steps=chunk)
    return walker.run(steps, start=start)


def assert_traces_equal(scalar, vector, label=""):
    """Events, counter tables and the per-block index must all agree."""
    assert scalar.num_steps == vector.num_steps, label
    np.testing.assert_array_equal(scalar.blocks, vector.blocks, label)
    np.testing.assert_array_equal(scalar.taken, vector.taken, label)
    np.testing.assert_array_equal(scalar.use_counts(), vector.use_counts())
    np.testing.assert_array_equal(scalar.taken_counts(),
                                  vector.taken_counts())
    se, ve = scalar.events(), vector.events()
    assert se.keys() == ve.keys()
    for block in se:
        np.testing.assert_array_equal(se[block].steps, ve[block].steps)
        np.testing.assert_array_equal(se[block].taken_prefix,
                                      ve[block].taken_prefix)


# ---------------------------------------------------------------------------
# RNG transplant: the foundation everything else rests on.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 7, 12345, 2**31 - 1])
def test_numpy_stream_matches_python_random(seed):
    """Bulk numpy draws must equal random.Random(seed).random() exactly."""
    rng = random.Random(seed)
    expected = np.array([rng.random() for _ in range(1000)])
    stream = numpy_uniform_stream(seed)
    got = np.concatenate([stream.random_sample(n)
                          for n in (237, 1, 500, 262)])
    np.testing.assert_array_equal(expected, got)


def test_numpy_stream_chunking_is_invisible():
    """Any split of the stream yields the same doubles."""
    one_shot = numpy_uniform_stream(99).random_sample(512)
    stream = numpy_uniform_stream(99)
    dribbled = np.concatenate([stream.random_sample(1)
                               for _ in range(512)])
    np.testing.assert_array_equal(one_shot, dribbled)


# ---------------------------------------------------------------------------
# Hypothesis fuzz: arbitrary CFGs x behaviour mixes x chunkings.
# ---------------------------------------------------------------------------

@st.composite
def cfg_strategy(draw):
    """Arbitrary small CFGs: 0/1/2 successors per node, cycles allowed."""
    n = draw(st.integers(min_value=1, max_value=9))
    node = st.integers(min_value=0, max_value=n - 1)
    succs = []
    for _ in range(n):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            succs.append(())
        elif kind <= 2:  # bias toward straight-line chains
            succs.append((draw(node),))
        else:
            succs.append((draw(node), draw(node)))
    return ControlFlowGraph(succs)


@st.composite
def behavior_strategy(draw, cfg, steps):
    """A behaviour for every 2-successor node, mixing all four kinds."""
    prob = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    behavior = ProgramBehavior()
    nominal = max(steps, 1)
    for block in range(cfg.num_nodes):
        if len(cfg.successors(block)) != 2:
            continue
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            behavior.set(block, steady(draw(prob)))
        elif kind == 1:
            split = draw(st.floats(min_value=0.1, max_value=0.9))
            behavior.set(block, phased([(split, draw(prob)),
                                        (1.0 - split, draw(prob))],
                                       nominal))
        elif kind == 2:
            behavior.set(block, warmup(draw(st.integers(0, 40)),
                                       draw(prob), draw(prob)))
        else:
            behavior.set(block, drifting(draw(prob), draw(prob), nominal,
                                         segments=draw(st.integers(1, 5))))
    return behavior


@st.composite
def walk_case(draw):
    steps = draw(st.integers(min_value=0, max_value=500))
    cfg = draw(cfg_strategy())
    behavior = draw(behavior_strategy(cfg, steps))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    chunk = draw(st.sampled_from(CHUNKS))
    return cfg, behavior, steps, seed, chunk


@settings(max_examples=150, deadline=None)
@given(walk_case())
def test_fuzz_vector_equals_scalar(case):
    cfg, behavior, steps, seed, chunk = case
    scalar = scalar_trace(cfg, behavior, steps, seed)
    vector = vector_trace(cfg, behavior, steps, seed, chunk)
    assert_traces_equal(scalar, vector,
                        f"steps={steps} seed={seed} chunk={chunk}")


@settings(max_examples=40, deadline=None)
@given(walk_case(), st.integers(min_value=0, max_value=8))
def test_fuzz_start_override(case, start):
    cfg, behavior, steps, seed, _ = case
    if start >= cfg.num_nodes:
        start %= cfg.num_nodes
    scalar = scalar_trace(cfg, behavior, steps, seed, start=start)
    vector = vector_trace(cfg, behavior, steps, seed, 13, start=start)
    assert_traces_equal(scalar, vector, f"start={start}")


# ---------------------------------------------------------------------------
# Named edge cases the fuzz might only graze.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("chunk", CHUNKS)
def test_nested_cfg_every_chunking(nested_cfg, nested_behavior, chunk):
    """The workhorse shape: nested loops + diamond, 50k steps."""
    scalar = scalar_trace(nested_cfg, nested_behavior, 50_000, seed=11)
    vector = vector_trace(nested_cfg, nested_behavior, 50_000, 11, chunk)
    assert_traces_equal(scalar, vector, f"chunk={chunk}")


@pytest.mark.parametrize("make", [
    lambda: steady(0.9),
    lambda: steady(0.0),
    lambda: steady(1.0),
    lambda: phased([(0.25, 0.95), (0.5, 0.1), (0.25, 0.7)], 2_000),
    lambda: warmup(uses=17, p_init=1.0, p_steady=0.3),
    lambda: warmup(uses=0, p_init=0.0, p_steady=0.8),
    lambda: drifting(0.99, 0.01, 2_000, segments=7),
])
def test_each_behavior_kind_on_hot_self_loop(make):
    """A hot self-loop hits the simple-window fast path for every kind."""
    cfg = ControlFlowGraph([(1,), (1, 2), ()])
    behavior = ProgramBehavior()
    behavior.set(1, make())
    for chunk in CHUNKS:
        scalar = scalar_trace(cfg, behavior, 2_000, seed=3)
        vector = vector_trace(cfg, behavior, 2_000, 3, chunk)
        assert_traces_equal(scalar, vector, f"chunk={chunk}")


def test_multi_block_loop_body_general_window():
    """A loop whose body spans several blocks exercises the general
    (plen > 1) window path with a mid-body conditional."""
    cfg = ControlFlowGraph([
        (1,),        # 0 entry
        (2, 4),      # 1 header: fall -> body, taken -> out
        (3, 1),      # 2 body branch: taken -> back to header early
        (1,),        # 3 tail -> header
        (),          # 4 exit
    ])
    behavior = ProgramBehavior()
    behavior.set(1, steady(0.002))
    behavior.set(2, steady(0.3))
    for chunk in (1, 13, 4096):
        scalar = scalar_trace(cfg, behavior, 30_000, seed=5)
        vector = vector_trace(cfg, behavior, 30_000, 5, chunk)
        assert_traces_equal(scalar, vector, f"chunk={chunk}")


def test_phase_change_inside_window():
    """A phase boundary landing mid-window must split the window."""
    cfg = ControlFlowGraph([(0, 1), ()])
    behavior = ProgramBehavior()
    behavior.set(0, phased([(0.5, 0.01), (0.5, 0.99)], 1_000))
    for chunk in CHUNKS:
        scalar = scalar_trace(cfg, behavior, 1_000, seed=21)
        vector = vector_trace(cfg, behavior, 1_000, 21, chunk)
        assert_traces_equal(scalar, vector, f"chunk={chunk}")


def test_degenerate_shapes():
    """max_steps 0 and 1, immediate exits, and pure cycles."""
    exit_only = ControlFlowGraph([()])
    chain_to_exit = ControlFlowGraph([(1,), (2,), ()])
    pure_cycle = ControlFlowGraph([(1,), (2,), (0,)])
    empty = ProgramBehavior()
    for cfg in (exit_only, chain_to_exit, pure_cycle):
        for steps in (0, 1, 2, 7, 1_000):
            scalar = scalar_trace(cfg, empty, steps, seed=0)
            for chunk in CHUNKS:
                vector = vector_trace(cfg, empty, steps, 0, chunk)
                assert_traces_equal(scalar, vector,
                                    f"steps={steps} chunk={chunk}")


def test_vec_walk_convenience_matches_walk():
    cfg = ControlFlowGraph([(0, 1), ()])
    behavior = ProgramBehavior()
    behavior.set(0, steady(0.7))
    scalar = scalar_trace(cfg, behavior, 500, seed=9)
    vector = vec_walk(cfg, behavior, max_steps=500, seed=9)
    assert_traces_equal(scalar, vector)


# ---------------------------------------------------------------------------
# Streaming consumers: batches, incremental index, replay ingest.
# ---------------------------------------------------------------------------

def test_streamed_batches_reassemble_exactly(nested_cfg, nested_behavior):
    """Concatenated run_batches output == run() == scalar oracle, and
    batch boundaries cover the trace with no gaps or overlaps."""
    walker = VecWalker(nested_cfg, nested_behavior, seed=4, chunk_steps=777)
    batches = list(walker.run_batches(40_000))
    scalar = scalar_trace(nested_cfg, nested_behavior, 40_000, seed=4)

    pos = 0
    for batch in batches:
        np.testing.assert_array_equal(
            scalar.blocks[pos:pos + len(batch.blocks)], batch.blocks)
        np.testing.assert_array_equal(
            scalar.taken[pos:pos + len(batch.taken)], batch.taken)
        pos += len(batch.blocks)
    assert pos == scalar.num_steps


def test_incremental_index_equals_lazy_index(nested_cfg, nested_behavior):
    """EventIndexBuilder fed chunk-by-chunk == trace.events() built lazily."""
    walker = VecWalker(nested_cfg, nested_behavior, seed=6, chunk_steps=997)
    builder = EventIndexBuilder(nested_cfg.num_nodes)
    for batch in walker.run_batches(30_000):
        builder.add_batch(batch)
    incremental = builder.finalize()

    lazy = scalar_trace(nested_cfg, nested_behavior, 30_000, seed=6).events()
    assert incremental.keys() == lazy.keys()
    for block in lazy:
        np.testing.assert_array_equal(incremental[block].steps,
                                      lazy[block].steps)
        np.testing.assert_array_equal(incremental[block].taken_prefix,
                                      lazy[block].taken_prefix)


def _replay_fingerprint(dbt):
    return (sorted(dbt.freeze_step.items()),
            sorted(dbt.optimized),
            [(r.region_id, tuple(r.members)) for r in dbt.regions])


def test_replay_from_batches_equals_scalar_replay(nested_cfg,
                                                  nested_behavior):
    """Batched ingest must reach the same regions/freezes as the scalar
    trace fed through the classic constructor."""
    config = DBTConfig(threshold=50)
    scalar = scalar_trace(nested_cfg, nested_behavior, 60_000, seed=8)
    expected = ReplayDBT(scalar, nested_cfg, config).run()

    walker = VecWalker(nested_cfg, nested_behavior, seed=8, chunk_steps=509)
    got = ReplayDBT.from_batches(walker.run_batches(60_000), nested_cfg,
                                 config).run()
    assert _replay_fingerprint(expected) == _replay_fingerprint(got)


def test_multireplay_from_batches(nested_cfg, nested_behavior):
    thresholds = [5, 50, 500]
    scalar = scalar_trace(nested_cfg, nested_behavior, 60_000, seed=8)
    expected = MultiThresholdReplay(scalar, nested_cfg, thresholds).run()

    walker = VecWalker(nested_cfg, nested_behavior, seed=8, chunk_steps=509)
    got = MultiThresholdReplay.from_batches(
        walker.run_batches(60_000), nested_cfg, thresholds).run()
    for t in thresholds:
        assert _replay_fingerprint(expected.state(t)) == \
            _replay_fingerprint(got.state(t))


def test_assemble_trace_prebuilt_index_is_attached(nested_cfg,
                                                   nested_behavior):
    walker = VecWalker(nested_cfg, nested_behavior, seed=2, chunk_steps=997)
    trace = assemble_trace(walker.run_batches(20_000), nested_cfg.num_nodes,
                           build_index=True)
    assert trace._events is not None  # index arrived pre-built
    lazy = scalar_trace(nested_cfg, nested_behavior, 20_000, seed=2)
    assert_traces_equal(lazy, trace)
