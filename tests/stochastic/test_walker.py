"""CFG walker tests: determinism, semantics, statistical behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import ControlFlowGraph
from repro.interp import RecordingListener
from repro.stochastic import (CFGWalker, ProgramBehavior, phased,
                              replay_trace, steady, walk, warmup)


def test_same_seed_same_trace(nested_cfg, nested_behavior):
    a = walk(nested_cfg, nested_behavior, 5000, seed=3)
    b = walk(nested_cfg, nested_behavior, 5000, seed=3)
    assert np.array_equal(a.blocks, b.blocks)
    assert np.array_equal(a.taken, b.taken)


def test_different_seed_different_trace(nested_cfg, nested_behavior):
    a = walk(nested_cfg, nested_behavior, 5000, seed=1)
    b = walk(nested_cfg, nested_behavior, 5000, seed=2)
    assert not (np.array_equal(a.blocks, b.blocks) and
                np.array_equal(a.taken, b.taken))


def test_max_steps_bounds_run(nested_cfg, nested_behavior):
    trace = walk(nested_cfg, nested_behavior, 777, seed=0)
    assert trace.num_steps == 777


def test_walk_stops_at_exit():
    cfg = ControlFlowGraph([(1,), ()])
    trace = walk(cfg, ProgramBehavior(), 100, seed=0)
    assert list(trace.blocks) == [0, 1]


def test_branch_taken_goes_to_first_successor():
    cfg = ControlFlowGraph([(1, 2), (), ()])
    behavior = ProgramBehavior()
    behavior.set(0, steady(1.0))
    trace = walk(cfg, behavior, 100, seed=0)
    assert list(trace.blocks) == [0, 1]
    assert trace.taken[0] == 1

    behavior.set(0, steady(0.0))
    trace = walk(cfg, behavior, 100, seed=0)
    assert list(trace.blocks) == [0, 2]
    assert trace.taken[0] == 0


def test_steady_probability_is_respected():
    # Branch whose both targets stay in the cycle, so the walk never
    # exits and the empirical taken rate is well sampled.
    cfg = ControlFlowGraph([(0, 0)])
    behavior = ProgramBehavior()
    behavior.set(0, steady(0.75))
    trace = walk(cfg, behavior, 50_000, seed=5)
    rate = trace.taken_counts()[0] / trace.use_counts()[0]
    assert rate == pytest.approx(0.75, abs=0.01)


def test_phases_respected():
    cfg = ControlFlowGraph([(0, 0)])
    behavior = ProgramBehavior()
    behavior.set(0, phased([(0.5, 0.9), (0.5, 0.3)], total_steps=20_000))
    trace = walk(cfg, behavior, 20_000, seed=11)
    first = trace.taken[:10_000]
    second = trace.taken[10_000:]
    assert first.mean() == pytest.approx(0.9, abs=0.02)
    assert second.mean() == pytest.approx(0.3, abs=0.02)


def test_warmup_respected():
    cfg = ControlFlowGraph([(0, 1), ()])
    behavior = ProgramBehavior()
    behavior.set(0, warmup(uses=100, p_init=1.0, p_steady=0.99))
    trace = walk(cfg, behavior, 5000, seed=2)
    assert trace.taken[:100].min() == 1  # warm-up never exits


def test_flow_conservation(nested_trace, nested_cfg):
    """Each block's use equals its dynamic inflow (+1 for the start)."""
    edges = nested_trace.edge_counts()
    use = nested_trace.use_counts()
    inflow = np.zeros(nested_cfg.num_nodes, dtype=np.int64)
    for (src, dst), count in edges.items():
        inflow[dst] += count
    inflow[nested_trace.blocks[0]] += 1
    last = nested_trace.blocks[-1]
    # every executed block: use == inflow
    assert np.array_equal(inflow, use)


def test_trace_edges_follow_cfg(nested_trace, nested_cfg):
    for (src, dst), _count in nested_trace.edge_counts().items():
        assert dst in nested_cfg.successors(src)


def test_replay_trace_reproduces_stream(nested_trace):
    listener = RecordingListener()
    replay_trace(nested_trace, listener)
    assert listener.blocks == list(nested_trace.blocks)
    expected = [(int(b), bool(t))
                for b, t in zip(nested_trace.blocks, nested_trace.taken)
                if t != -1]
    assert listener.branches == expected


def test_custom_start_node(nested_cfg, nested_behavior):
    walker = CFGWalker(nested_cfg, nested_behavior, seed=0)
    trace = walker.run(100, start=4)
    assert trace.blocks[0] == 4


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), p=st.floats(0.05, 0.95))
def test_branch_counts_consistent_property(seed, p):
    """taken <= use for every block, and branch outcomes only on branches."""
    cfg = ControlFlowGraph([(1,), (1, 2), ()])
    behavior = ProgramBehavior()
    behavior.set(1, steady(p))
    trace = walk(cfg, behavior, 2000, seed=seed)
    use = trace.use_counts()
    taken = trace.taken_counts()
    assert (taken <= use).all()
    assert taken[0] == 0 and taken[2] == 0
