"""Character-realisation tests."""

import pytest

from repro.stochastic import steady
from repro.workloads import (BranchSpec, Character, CharacterConfig,
                             DRIVER_ROLE, LoopSegment, BranchySegment,
                             build_workload, realize_character, trips)
from repro.workloads.characters import clamp_to_range, jitter, jitter_trips
import random


@pytest.fixture
def workload():
    return build_workload([
        LoopSegment("loop", diamonds=1, chain=1),
        BranchySegment("br", diamonds=2),
    ], seed=1)


def test_driver_always_loops(workload):
    ref, train = realize_character(workload, Character(), total_steps=1000)
    driver = workload.branch_roles[DRIVER_ROLE]
    assert ref.behavior_of(driver).steady_p == 1.0
    assert train.behavior_of(driver).steady_p == 1.0


def test_explicit_specs_win(workload):
    character = Character(specs={
        "br.d0": BranchSpec(ref=0.9, train=0.1),
        "loop": BranchSpec(ref=trips(20.0)),
    })
    ref, train = realize_character(workload, character, total_steps=1000)
    node = workload.branch_roles["br.d0"]
    assert ref.behavior_of(node).steady_p == 0.9
    assert train.behavior_of(node).steady_p == 0.1
    latch = workload.branch_roles["loop"]
    assert ref.behavior_of(latch).steady_p == pytest.approx(0.95)


def test_unknown_spec_role_raises(workload):
    character = Character(specs={"nope": BranchSpec(ref=0.5)})
    with pytest.raises(ValueError, match="unknown roles"):
        realize_character(workload, character, total_steps=1000)


def test_every_branch_gets_behaviors(workload):
    ref, train = realize_character(workload, Character(), total_steps=1000)
    for role, node in workload.branch_roles.items():
        assert node in ref.branches
        assert node in train.branches


def test_deterministic_for_seed(workload):
    config = CharacterConfig(seed=42, warmup_fraction=0.5)
    a_ref, a_train = realize_character(workload, Character(config), 1000)
    b_ref, b_train = realize_character(workload, Character(config), 1000)
    for node in a_ref.branches:
        assert a_ref.branches[node] == b_ref.branches[node]
        assert a_train.branches[node] == b_train.branches[node]


def test_default_train_never_crosses_range(workload):
    """Default train divergence stays within the ref range (the paper's
    range-crossing train divergence is opt-in per benchmark)."""
    from repro.core import bp_range
    config = CharacterConfig(seed=7, train_jitter_bp=0.3)  # huge jitter
    ref, train = realize_character(workload, Character(config), 1000)
    driver = workload.branch_roles[DRIVER_ROLE]
    latches = {info.latch for info in workload.loops.values()}
    for node in ref.branches:
        if node == driver or node in latches:
            continue
        assert bp_range(ref.behavior_of(node).steady_p) is \
            bp_range(train.behavior_of(node).steady_p)


class TestHelpers:
    def test_clamp_to_range(self):
        assert clamp_to_range(0.9, reference=0.5) == 0.695
        assert clamp_to_range(0.1, reference=0.5) == 0.305
        assert clamp_to_range(0.5, reference=0.9) == 0.705
        assert clamp_to_range(0.99, reference=0.9) == 0.98
        assert clamp_to_range(0.4, reference=0.1) == 0.295
        # value already inside: unchanged
        assert clamp_to_range(0.6, reference=0.5) == 0.6

    def test_jitter_stays_in_bounds(self):
        rng = random.Random(0)
        for _ in range(200):
            assert 0.02 <= jitter(0.5, 0.5, rng) <= 0.98

    def test_jitter_trips_positive(self):
        rng = random.Random(0)
        for _ in range(100):
            assert jitter_trips(10.0, 0.5, rng) >= 1.05

    def test_trips_helper(self):
        assert trips(1.0) == 0.0
        assert trips(10.0) == pytest.approx(0.9)
