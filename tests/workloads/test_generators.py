"""Workload-skeleton generator tests."""

import pytest

from repro.cfg import find_loops, reachable
from repro.workloads import (DRIVER_ROLE, BranchySegment, ChainSegment,
                             LoopSegment, WorkloadBuilder, build_workload)


class TestWorkloadBuilder:
    def test_chain(self):
        builder = WorkloadBuilder()
        first, last = builder.chain(3)
        exit_block = builder.block("exit", arity=0)
        builder.wire(last, 0, exit_block)
        workload = builder.finish(entry=first)
        assert workload.num_blocks == 4
        assert workload.exit_block == exit_block

    def test_unwired_slot_rejected(self):
        builder = WorkloadBuilder()
        builder.block("a", arity=1)
        with pytest.raises(ValueError, match="unwired"):
            builder.finish()

    def test_no_exit_rejected(self):
        builder = WorkloadBuilder()
        a = builder.block("a", arity=1)
        builder.wire(a, 0, a)
        with pytest.raises(ValueError, match="exit"):
            builder.finish()

    def test_duplicate_role_rejected(self):
        builder = WorkloadBuilder()
        a = builder.block("a", arity=2)
        builder.role("x", a)
        with pytest.raises(ValueError, match="duplicate role"):
            builder.role("x", a)

    def test_bad_arity_rejected(self):
        with pytest.raises(ValueError):
            WorkloadBuilder().block(arity=3)

    def test_diamond_registers_role(self):
        builder = WorkloadBuilder()
        split, join = builder.diamond("d")
        exit_block = builder.block("exit", arity=0)
        builder.wire(join, 0, exit_block)
        workload = builder.finish(entry=split)
        assert workload.branch_roles["d"] == split
        assert workload.cfg.is_branch(split)

    def test_bottom_loop_structure(self):
        builder = WorkloadBuilder()
        entry, end = builder.chain(2)
        _, latch = builder.bottom_loop("L", entry, end)
        exit_block = builder.block("exit", arity=0)
        builder.wire(latch, 1, exit_block)
        workload = builder.finish(entry=entry)
        info = workload.loops["L"]
        assert info.header == entry
        assert info.latch == latch
        assert workload.cfg.taken_target(latch) == entry  # back edge
        forest = find_loops(workload.cfg)
        assert entry in forest.headers


class TestBuildWorkload:
    def _segments(self):
        return [
            LoopSegment("l1", diamonds=1, chain=1),
            BranchySegment("b1", diamonds=2),
            ChainSegment("c1", blocks=2),
            LoopSegment("l2", diamonds=0, chain=1, nested=True),
        ]

    def test_structure(self):
        workload = build_workload(self._segments(), seed=3)
        roles = workload.branch_roles
        assert DRIVER_ROLE in roles
        assert "l1" in roles and "l1.d0" in roles
        assert "b1.d0" in roles and "b1.d1" in roles
        assert "l2" in roles and "l2.inner" in roles
        assert set(workload.loops) == {"l1", "l2", "l2.inner", DRIVER_ROLE}

    def test_everything_reachable(self):
        workload = build_workload(self._segments(), seed=3)
        assert reachable(workload.cfg) == set(range(workload.num_blocks))

    def test_loops_detected_by_analysis(self):
        workload = build_workload(self._segments(), seed=3)
        forest = find_loops(workload.cfg)
        for name, info in workload.loops.items():
            assert info.header in forest.headers, name

    def test_nested_loop_bodies_nest(self):
        workload = build_workload(self._segments(), seed=3)
        forest = find_loops(workload.cfg)
        outer = forest.loop_of_header(workload.loops["l2"].header)
        inner = forest.loop_of_header(workload.loops["l2.inner"].header)
        assert inner.body < outer.body

    def test_inner_loop_mirrors_branchiness(self):
        plain = build_workload([LoopSegment("p", diamonds=0, chain=1,
                                            nested=True)], seed=0)
        assert "p.inner.d0" not in plain.branch_roles
        branchy = build_workload([LoopSegment("p", diamonds=2, chain=1,
                                              nested=True)], seed=0)
        assert "p.inner.d0" in branchy.branch_roles

    def test_sizes_positive(self):
        workload = build_workload(self._segments(), seed=3)
        assert (workload.sizes > 0).all()
        assert len(workload.sizes) == workload.num_blocks

    def test_duplicate_segment_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            build_workload([ChainSegment("x"), ChainSegment("x")])

    def test_empty_segments_rejected(self):
        with pytest.raises(ValueError):
            build_workload([])

    def test_deterministic_given_seed(self):
        a = build_workload(self._segments(), seed=5)
        b = build_workload(self._segments(), seed=5)
        assert a.cfg.succs == b.cfg.succs
        assert list(a.sizes) == list(b.sizes)
