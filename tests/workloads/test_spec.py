"""Benchmark registry and scaling tests."""

import numpy as np
import pytest

from repro.workloads import (NOMINAL_THRESHOLDS, SIM_THRESHOLDS,
                             THRESHOLD_SCALE, all_benchmarks,
                             benchmark_names, fp_benchmarks, get_benchmark,
                             int_benchmarks, nominal_label)


def test_registry_has_full_spec2000():
    assert len(benchmark_names("int")) == 12
    assert len(benchmark_names("fp")) == 14
    assert len(benchmark_names()) == 26


def test_expected_names_present():
    names = set(benchmark_names())
    for expected in ("gzip", "vpr", "gcc", "mcf", "crafty", "parser",
                     "eon", "perlbmk", "gap", "vortex", "bzip2", "twolf",
                     "wupwise", "swim", "mgrid", "applu", "mesa", "galgel",
                     "art", "equake", "facerec", "ammp", "lucas", "fma3d",
                     "sixtrack", "apsi"):
        assert expected in names


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError, match="unknown benchmark"):
        get_benchmark("quake3")


def test_suite_helpers():
    assert all(b.suite == "int" for b in int_benchmarks())
    assert all(b.suite == "fp" for b in fp_benchmarks())
    assert len(all_benchmarks()) == 26


def test_threshold_scaling():
    assert THRESHOLD_SCALE == 10
    assert len(SIM_THRESHOLDS) == len(NOMINAL_THRESHOLDS) == 13
    for sim, nominal in zip(SIM_THRESHOLDS, NOMINAL_THRESHOLDS):
        assert sim * THRESHOLD_SCALE == nominal


@pytest.mark.parametrize("sim,label", [
    (10, "100"), (50, "500"), (100, "1k"), (1600, "16k"),
    (100_000, "1M"), (400_000, "4M"),
])
def test_nominal_labels(sim, label):
    assert nominal_label(sim) == label


def test_benchmark_traces_are_deterministic():
    a = get_benchmark("swim")
    b = get_benchmark("swim")
    a.run_steps = b.run_steps = 20_000
    ta = a.trace("ref")
    tb = b.trace("ref")
    assert np.array_equal(ta.blocks, tb.blocks)


def test_ref_and_train_differ():
    bench = get_benchmark("eon")
    bench.run_steps = 20_000
    bench.train_steps = 20_000
    ref = bench.trace("ref")
    train = bench.trace("train")
    assert not np.array_equal(ref.blocks[:1000], train.blocks[:1000]) or \
        not np.array_equal(ref.taken[:1000], train.taken[:1000])


def test_unknown_input_rejected():
    with pytest.raises(ValueError, match="unknown input"):
        get_benchmark("swim").trace("test")


def test_invalid_suite_rejected():
    from repro.workloads import SyntheticBenchmark
    bench = get_benchmark("swim")
    with pytest.raises(ValueError, match="suite"):
        SyntheticBenchmark(name="x", suite="vector",
                           workload=bench.workload,
                           character=bench.character, run_steps=100)


def test_train_steps_default():
    bench = get_benchmark("art")
    assert bench.train_steps == max(bench.run_steps // 3, 10_000)
