"""Every suite benchmark must build, validate and show its character.

The trace-based tests run at sharply reduced lengths so the whole module
stays fast; the characteristic assertions are scale-free.
"""

import pytest

from repro.cfg import reachable
from repro.core import bp_range, compare_flat_profiles
from repro.profiles import avep_from_trace
from repro.workloads import all_benchmarks, get_benchmark

ALL_NAMES = [b.name for b in all_benchmarks()]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_benchmark_builds_and_realizes(name):
    bench = get_benchmark(name)
    assert bench.num_blocks if hasattr(bench, "num_blocks") else True
    assert bench.workload.num_blocks > 10
    assert reachable(bench.cfg) == set(range(bench.workload.num_blocks))
    ref, train = bench.behaviors()
    for node in bench.workload.branch_roles.values():
        assert node in ref.branches and node in train.branches
    assert len(bench.loop_forest()) >= 2  # driver + at least one loop


@pytest.mark.parametrize("name", ALL_NAMES)
def test_short_trace_runs(name):
    bench = get_benchmark(name)
    bench.run_steps = 5_000
    trace = bench.trace("ref")
    assert trace.num_steps == 5_000
    # every executed edge follows the CFG
    use = trace.use_counts()
    assert use.sum() == 5_000


def test_fp_benchmarks_are_loop_dominated():
    bench = get_benchmark("swim")
    bench.run_steps = 30_000
    trace = bench.trace("ref")
    latches = [info.latch for info in bench.workload.loops.values()]
    use = trace.use_counts()
    latch_share = sum(use[latch] for latch in latches) / use.sum()
    assert latch_share > 0.10  # latches execute constantly


def test_perlbmk_training_input_is_terrible():
    bench = get_benchmark("perlbmk")
    bench.run_steps = 60_000
    bench.train_steps = 30_000
    avep = avep_from_trace(bench.trace("ref"))
    train = avep_from_trace(bench.trace("train"), input_name="train")
    result = compare_flat_profiles(bench.cfg, train, avep)
    assert result.bp_mismatch > 0.35
    assert result.sd_bp > 0.3


def test_swim_training_input_is_fine():
    bench = get_benchmark("swim")
    bench.run_steps = 60_000
    bench.train_steps = 30_000
    avep = avep_from_trace(bench.trace("ref"))
    train = avep_from_trace(bench.trace("train"), input_name="train")
    result = compare_flat_profiles(bench.cfg, train, avep)
    assert result.bp_mismatch < 0.05


def test_mcf_has_phase_behavior():
    """Mcf's hot branch probabilities differ early-run vs whole-run."""
    bench = get_benchmark("mcf")
    ref, _ = bench.behaviors()
    changed = [b for b in ref.branches.values() if len(b.phases) > 1]
    assert len(changed) >= 4


def test_gzip_has_warmup():
    bench = get_benchmark("gzip")
    ref, _ = bench.behaviors()
    warmups = [b for b in ref.branches.values() if b.warmup_uses > 0]
    assert warmups
    node = bench.workload.branch_roles["scan.d0"]
    behavior = ref.behavior_of(node)
    # early behaviour sits in a different range from steady state
    assert bp_range(behavior.warmup_p) is not bp_range(behavior.steady_p)


def test_wupwise_warmup_is_very_long():
    bench = get_benchmark("wupwise")
    ref, _ = bench.behaviors()
    node = bench.workload.branch_roles["su3.inner.d0"]
    assert ref.behavior_of(node).warmup_uses == 100_000


def test_lucas_train_flips_trip_class():
    from repro.core import lp_class
    bench = get_benchmark("lucas")
    ref, train = bench.behaviors()
    latch = bench.workload.branch_roles["fft_sweep"]
    assert lp_class(ref.behavior_of(latch).steady_p) is not \
        lp_class(train.behavior_of(latch).steady_p)
